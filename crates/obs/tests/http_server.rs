//! Integration tests for `twm_obs::http::MetricsServer` over real
//! sockets: scrape bytes equal the snapshot exposition, scrapes never
//! perturb the registry they serve, and malformed traffic gets typed
//! errors. Everything runs against caller-owned registries, so the
//! process-wide registry (shared by sibling tests) never enters the
//! assertions.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;

use twm_obs::{MetricsServer, Registry};

/// A parsed HTTP/1.1 response: status code, headers, body bytes.
struct HttpResponse {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl HttpResponse {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(key, _)| key.eq_ignore_ascii_case(name))
            .map(|(_, value)| value.as_str())
    }
}

/// Sends raw bytes, reads to EOF (the server is `Connection: close`),
/// and splits the response.
fn raw_request(addr: SocketAddr, request: &[u8]) -> HttpResponse {
    let mut stream = TcpStream::connect(addr).expect("connect");
    // The server may respond (and close) before the whole request is
    // written — a 400 for an oversized head does exactly that — so a
    // write error here is not a test failure.
    let _ = stream.write_all(request);
    let _ = stream.flush();
    // Half-close so the server's error paths see EOF instead of an
    // open stream when they drain before closing.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let split = response
        .windows(4)
        .position(|window| window == b"\r\n\r\n")
        .expect("header/body split");
    let head = std::str::from_utf8(&response[..split]).expect("ASCII head");
    let mut lines = head.lines();
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .map(|line| {
            let (name, value) = line.split_once(": ").expect("header line");
            (name.to_string(), value.to_string())
        })
        .collect();
    HttpResponse {
        status,
        headers,
        body: response[split + 4..].to_vec(),
    }
}

fn get(addr: SocketAddr, path: &str) -> HttpResponse {
    raw_request(
        addr,
        format!("GET {path} HTTP/1.1\r\nHost: twm-test\r\nAccept: */*\r\n\r\n").as_bytes(),
    )
}

/// Binds a server over `registry` and serves it from a background
/// thread for the rest of the process's life.
fn spawn_server(registry: Arc<Registry>) -> (Arc<MetricsServer>, SocketAddr) {
    let server = Arc::new(MetricsServer::bind_registry("127.0.0.1:0", registry).expect("bind"));
    let addr = server.local_addr().expect("local addr");
    let background = server.clone();
    thread::spawn(move || {
        let _ = background.run_concurrent();
    });
    (server, addr)
}

/// The acceptance pin: HTTP scrape bytes == `snapshot().expose()` of
/// the same registry, including escaping and histogram rendering — and
/// scraping twice returns identical bytes because `/metrics` performs
/// no registry mutation.
#[test]
fn scrape_bytes_equal_snapshot_exposition_and_scrapes_are_pure() {
    let registry = Arc::new(Registry::new());
    registry
        .counter("requests_total", &[("path", "a\\b\"c\nd")])
        .add(7);
    registry.gauge("depth", &[]).set(-3);
    let latency = registry.histogram("latency_ns", &[("verb", "get")], &[1_000, 10_000]);
    latency.observe(500);
    latency.observe(5_000);
    latency.observe(50_000);
    let (server, addr) = spawn_server(registry.clone());

    let first = get(addr, "/metrics");
    assert_eq!(first.status, 200);
    assert_eq!(
        first.header("Content-Type"),
        Some("text/plain; version=0.0.4; charset=utf-8")
    );
    assert_eq!(
        first.header("Content-Length"),
        Some(first.body.len().to_string().as_str())
    );
    assert_eq!(first.header("Connection"), Some("close"));
    assert_eq!(
        first.body,
        registry.snapshot().expose().into_bytes(),
        "HTTP scrape and in-process exposition diverged"
    );

    // Error traffic in between must not show up in the exposition...
    assert_eq!(get(addr, "/nope").status, 404);
    let post = raw_request(addr, b"POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
    assert_eq!(post.status, 405);
    assert_eq!(post.header("Allow"), Some("GET"));

    // ...so a second scrape is byte-identical to the first.
    let second = get(addr, "/metrics");
    assert_eq!(second.status, 200);
    assert_eq!(second.body, first.body, "a scrape perturbed the registry");

    let stats = server.stats();
    assert_eq!(stats.scrapes, 2);
    assert_eq!(stats.not_found, 1);
    assert_eq!(stats.method_not_allowed, 1);
    assert_eq!(stats.connections, 4);
}

/// `/healthz` answers JSON, refreshes the uptime gauge, and carries the
/// build-info labels registered at bind.
#[test]
fn healthz_reports_liveness_and_updates_uptime() {
    let registry = Arc::new(Registry::new());
    let (server, addr) = spawn_server(registry.clone());

    // Bind registered the endpoint's own gauges.
    let text = registry.expose();
    assert!(text.contains("# TYPE twm_build_info gauge"), "{text}");
    assert!(
        text.contains("twm_build_info{package=\"twm-obs\"")
            && text.contains("version=\"")
            && text.contains("\"} 1"),
        "{text}"
    );
    assert!(text.contains("twm_obs_http_uptime_seconds"), "{text}");

    let health = get(addr, "/healthz");
    assert_eq!(health.status, 200);
    assert_eq!(health.header("Content-Type"), Some("application/json"));
    let body = String::from_utf8(health.body).expect("JSON body");
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(body.contains("\"package\":\"twm-obs\""), "{body}");
    assert!(body.contains("\"uptime_seconds\":"), "{body}");
    assert!(registry.gauge("twm_obs_http_uptime_seconds", &[]).get() >= 0);
    assert_eq!(server.stats().health_checks, 1);
}

/// Typed 400s: malformed request lines, oversized heads, binary junk.
#[test]
fn malformed_requests_get_400s() {
    let registry = Arc::new(Registry::new());
    let (server, addr) = spawn_server(registry);

    for raw in [
        b"GARBAGE\r\n\r\n".to_vec(),
        b"GET /metrics\r\n\r\n".to_vec(),         // no version
        b"GET metrics HTTP/1.1\r\n\r\n".to_vec(), // not origin-form
        b"\xff\xfe\x00binary HTTP/1.1\r\n\r\n".to_vec(), // not UTF-8
    ] {
        let response = raw_request(addr, &raw);
        assert_eq!(response.status, 400, "accepted {raw:?}");
    }

    // An oversized head (no terminator within the cap) is refused.
    let oversized = vec![b'A'; 10 * 1024];
    let response = raw_request(addr, &oversized);
    assert_eq!(response.status, 400);

    assert_eq!(server.stats().bad_requests, 5);
    assert_eq!(server.stats().scrapes, 0);
}

/// The serial accept loop serves the same contract as the concurrent
/// one (one `accept_one` per request).
#[test]
fn accept_one_serves_serially() {
    let registry = Arc::new(Registry::new());
    registry.counter("serial_total", &[]).add(3);
    let server = Arc::new(MetricsServer::bind_registry("127.0.0.1:0", registry.clone()).unwrap());
    let addr = server.local_addr().unwrap();

    let background = server.clone();
    let serving = thread::spawn(move || {
        for _ in 0..2 {
            background.accept_one().expect("accept");
        }
    });
    let first = get(addr, "/metrics");
    let second = get(addr, "/metrics");
    serving.join().expect("serving thread");

    assert_eq!(first.status, 200);
    assert_eq!(second.body, registry.snapshot().expose().into_bytes());
    assert_eq!(server.stats().scrapes, 2);
}
