//! `HistogramSnapshot::quantile` property-tested against a scalar
//! reference: for any bucket layout and observation set, the bucketed
//! estimate must land in the same bucket as the true order statistic
//! computed from the raw (sorted) observations, quantiles must be
//! monotone in `q`, and ranks on cumulative bucket boundaries must hit
//! the bucket edge exactly.

use proptest::prelude::*;
use twm_obs::Histogram;

fn snapshot_of(bounds: &[u64], observations: &[u64]) -> twm_obs::HistogramSnapshot {
    let histogram = Histogram::new(bounds);
    for &observation in observations {
        histogram.observe(observation);
    }
    histogram.snapshot()
}

proptest! {
    /// The estimate lies inside the bucket holding the reference order
    /// statistic — the tightest promise a bucketed histogram can make,
    /// and exactly what `histogram_quantile` promises.
    #[test]
    fn estimate_lands_in_the_reference_bucket(
        bounds in collection::vec(1u64..10_000, 1..8),
        observations in collection::vec(0u64..12_000, 1..100),
        per_mille in 0u64..1001,
    ) {
        let snapshot = snapshot_of(&bounds, &observations);
        let q = per_mille as f64 / 1000.0;
        let estimated = snapshot.quantile(q).expect("non-empty histogram");

        // Scalar reference: the ceil(q*n)-th order statistic (1-based;
        // q = 0 means the minimum).
        let mut sorted = observations.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize)
            .clamp(1, sorted.len());
        let reference = sorted[rank - 1];

        match snapshot.bounds.iter().position(|&bound| reference <= bound) {
            Some(at) => {
                let lower = if at == 0 { 0.0 } else { snapshot.bounds[at - 1] as f64 };
                let upper = snapshot.bounds[at] as f64;
                prop_assert!(
                    estimated >= lower && estimated <= upper,
                    "q={q}: estimate {estimated} outside bucket ({lower}, {upper}] of reference {reference}",
                );
            }
            // Reference overflowed every bound: the estimate reports
            // the largest finite bound.
            None => prop_assert_eq!(estimated, *snapshot.bounds.last().unwrap() as f64),
        }
    }

    /// More quantile never means a smaller value.
    #[test]
    fn quantiles_are_monotone_in_q(
        bounds in collection::vec(1u64..10_000, 1..8),
        observations in collection::vec(0u64..12_000, 1..60),
        a in 0u64..1001,
        b in 0u64..1001,
    ) {
        let snapshot = snapshot_of(&bounds, &observations);
        let (low, high) = (a.min(b), a.max(b));
        let at_low = snapshot.quantile(low as f64 / 1000.0).unwrap();
        let at_high = snapshot.quantile(high as f64 / 1000.0).unwrap();
        prop_assert!(at_low <= at_high, "q={low}‰ -> {at_low} > q={high}‰ -> {at_high}");
    }

    /// A rank landing exactly on a cumulative bucket boundary returns
    /// that bucket's upper bound *exactly* — integer bucket counts make
    /// the interpolation fraction exactly 1.0, no float slop. (Asserted
    /// whenever `cum/total` survives the f64 round-trip, which the
    /// generated sizes make the overwhelmingly common case.)
    #[test]
    fn bucket_edges_are_exact(
        bounds in collection::vec(1u64..10_000, 1..8),
        observations in collection::vec(0u64..12_000, 1..60),
    ) {
        let snapshot = snapshot_of(&bounds, &observations);
        let total: u64 = snapshot.counts.iter().sum();
        let mut cumulative = 0u64;
        for (at, &count) in snapshot.counts.iter().enumerate() {
            cumulative += count;
            if count == 0 || at >= snapshot.bounds.len() {
                continue;
            }
            let q = cumulative as f64 / total as f64;
            if q * total as f64 == cumulative as f64 {
                prop_assert_eq!(
                    snapshot.quantile(q),
                    Some(snapshot.bounds[at] as f64),
                    "edge at cumulative {}/{} of bound {}",
                    cumulative,
                    total,
                    snapshot.bounds[at],
                );
            }
        }
    }

    /// The p50/p90/p99 summary agrees with the underlying quantile
    /// calls and carries the snapshot's count and sum.
    #[test]
    fn summary_matches_its_quantiles(
        bounds in collection::vec(1u64..10_000, 1..8),
        observations in collection::vec(0u64..12_000, 1..60),
    ) {
        let snapshot = snapshot_of(&bounds, &observations);
        let summary = snapshot.summary().expect("non-empty histogram");
        prop_assert_eq!(summary.count, snapshot.count);
        prop_assert_eq!(summary.sum, snapshot.sum);
        prop_assert_eq!(Some(summary.p50), snapshot.quantile(0.5));
        prop_assert_eq!(Some(summary.p90), snapshot.quantile(0.9));
        prop_assert_eq!(Some(summary.p99), snapshot.quantile(0.99));
        prop_assert!(summary.p50 <= summary.p90 && summary.p90 <= summary.p99);
    }
}
