//! Spare allocation: located defects → a verified-repairable spare plan.
//!
//! Word-level redundancy means each defective word costs exactly one spare.
//! With enough spares the assignment is trivial; when defects outnumber
//! spares the allocator must *choose*, and the choice matters: a word
//! hosting a strongly confirmed defect ("must-repair") should beat a word
//! with many weak hypotheses. [`RepairAllocator`] offers both policies of
//! the classic redundancy-analysis trade-off:
//!
//! * **greedy** — words ranked by accumulated evidence, spares assigned in
//!   rank order (fast, optimal when all defects weigh equally);
//! * **exact for small spare counts** — an exhaustive subset search
//!   maximising `(must-repair words covered, total evidence covered)`,
//!   feasible because field spare counts are tiny; beyond the configured
//!   bounds it falls back to greedy.
//!
//! Both are deterministic; ties break toward lower word addresses.

use serde::{Deserialize, Serialize};

use twm_mem::{BitAddress, MemError, RepairableMemory};

use crate::localise::LocatedDefect;

/// One planned repair: a logical word served by a spare slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairAssignment {
    /// The defective logical word.
    pub word: usize,
    /// The spare slot assigned to it.
    pub spare: usize,
    /// The located defect cells motivating the repair.
    pub defects: Vec<BitAddress>,
}

/// A complete spare-assignment plan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepairPlan {
    /// The assignments, in ascending word order.
    pub assignments: Vec<RepairAssignment>,
    /// Defects in words the plan could not cover (spares exhausted).
    pub unrepaired: Vec<LocatedDefect>,
    /// Words classified as must-repair (hosting a defect at or above the
    /// allocator's confidence floor), ascending.
    pub must_repair_words: Vec<usize>,
    /// Spare slots the plan was allocated against.
    pub spares_available: usize,
}

impl RepairPlan {
    /// Whether every located defect is covered by an assignment.
    #[must_use]
    pub fn fully_repairs(&self) -> bool {
        self.unrepaired.is_empty()
    }

    /// Whether every must-repair word is covered.
    #[must_use]
    pub fn covers_must_repair(&self) -> bool {
        self.must_repair_words
            .iter()
            .all(|word| self.assignments.iter().any(|a| a.word == *word))
    }

    /// Whether the plan assigns no spares.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Applies the plan to a repairable memory, programming one remap
    /// entry per assignment.
    ///
    /// # Errors
    ///
    /// Returns the remap errors of
    /// [`RepairableMemory::map_word`] — notably
    /// [`MemError::SpareInUse`] / [`MemError::AddressOutOfRange`] if the
    /// memory does not have the spares the plan assumed.
    pub fn apply(&self, memory: &mut RepairableMemory) -> Result<(), MemError> {
        for assignment in &self.assignments {
            memory.map_word(assignment.word, assignment.spare)?;
        }
        Ok(())
    }
}

/// Options for [`RepairAllocator`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllocatorOptions {
    /// Run the exact subset search when within
    /// [`AllocatorOptions::max_exact_spares`] /
    /// [`AllocatorOptions::max_exact_words`] (default: `true`; otherwise
    /// always greedy).
    pub exact: bool,
    /// Largest spare count the exact search enumerates (default: 12).
    pub max_exact_spares: usize,
    /// Largest candidate-word count the exact search enumerates
    /// (default: 20 — `C(20, 12)` subsets remain cheap).
    pub max_exact_words: usize,
    /// Defects at or above this confidence make their word must-repair
    /// (default: 0.65 — at least two independent evidence sources).
    pub must_repair_floor: f64,
    /// Defects below this confidence are ignored entirely (default: 0.0).
    pub confidence_floor: f64,
}

impl Default for AllocatorOptions {
    fn default() -> Self {
        Self {
            exact: true,
            max_exact_spares: 12,
            max_exact_words: 20,
            must_repair_floor: 0.65,
            confidence_floor: 0.0,
        }
    }
}

/// The spare allocator — see the [module docs](self).
#[derive(Debug, Clone, Copy, Default)]
pub struct RepairAllocator {
    options: AllocatorOptions,
}

/// Per-word aggregation of located defects.
#[derive(Debug)]
struct WordDefects {
    word: usize,
    cells: Vec<BitAddress>,
    /// Confidence sum in deterministic integer milli-units.
    weight: u64,
    must_repair: bool,
}

impl RepairAllocator {
    /// An allocator with explicit options.
    #[must_use]
    pub fn new(options: AllocatorOptions) -> Self {
        Self { options }
    }

    /// The allocator's options.
    #[must_use]
    pub fn options(&self) -> AllocatorOptions {
        self.options
    }

    /// Assigns up to `spares` spare slots to the words hosting `defects`.
    ///
    /// Chosen words are assigned slots `0..` in ascending word order; the
    /// produced plan is deterministic for any input order of `defects`.
    #[must_use]
    pub fn allocate(&self, defects: &[LocatedDefect], spares: usize) -> RepairPlan {
        let considered: Vec<&LocatedDefect> = defects
            .iter()
            .filter(|defect| defect.confidence >= self.options.confidence_floor)
            .collect();

        // Aggregate per word, ascending.
        let mut words: Vec<WordDefects> = Vec::new();
        for defect in &considered {
            let weight = (defect.confidence * 1000.0).round() as u64;
            let must = defect.confidence >= self.options.must_repair_floor;
            match words.iter_mut().find(|w| w.word == defect.cell.word) {
                Some(entry) => {
                    entry.cells.push(defect.cell);
                    entry.weight += weight;
                    entry.must_repair |= must;
                }
                None => words.push(WordDefects {
                    word: defect.cell.word,
                    cells: vec![defect.cell],
                    weight,
                    must_repair: must,
                }),
            }
        }
        words.sort_by_key(|w| w.word);
        for entry in &mut words {
            entry.cells.sort();
            entry.cells.dedup();
        }

        let must_repair_words: Vec<usize> = words
            .iter()
            .filter(|w| w.must_repair)
            .map(|w| w.word)
            .collect();

        let chosen: Vec<usize> = if words.len() <= spares {
            (0..words.len()).collect()
        } else if self.options.exact
            && spares <= self.options.max_exact_spares
            // The hard cap keeps the bitmask enumeration bounded even under
            // adventurous option values.
            && words.len() <= self.options.max_exact_words.min(22)
        {
            exact_choice(&words, spares)
        } else {
            greedy_choice(&words, spares)
        };

        let mut chosen = chosen;
        chosen.sort_unstable();
        let assignments: Vec<RepairAssignment> = chosen
            .iter()
            .enumerate()
            .map(|(slot, &index)| RepairAssignment {
                word: words[index].word,
                spare: slot,
                defects: words[index].cells.clone(),
            })
            .collect();
        let covered: Vec<usize> = assignments.iter().map(|a| a.word).collect();
        let unrepaired: Vec<LocatedDefect> = considered
            .into_iter()
            .filter(|defect| !covered.contains(&defect.cell.word))
            .cloned()
            .collect();

        RepairPlan {
            assignments,
            unrepaired,
            must_repair_words,
            spares_available: spares,
        }
    }
}

/// Greedy ranking: must-repair words first, then by evidence weight, then
/// by defect count, ties toward lower addresses.
fn greedy_choice(words: &[WordDefects], spares: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..words.len()).collect();
    order.sort_by(|&a, &b| {
        let (wa, wb) = (&words[a], &words[b]);
        wb.must_repair
            .cmp(&wa.must_repair)
            .then(wb.weight.cmp(&wa.weight))
            .then(wb.cells.len().cmp(&wa.cells.len()))
            .then(wa.word.cmp(&wb.word))
    });
    order.truncate(spares);
    order
}

/// Exhaustive subset search maximising `(must-repair covered, weight
/// covered)`; the lexicographically smallest word set wins ties. Bounded
/// by the allocator options, so the bitmask enumeration stays cheap.
fn exact_choice(words: &[WordDefects], spares: usize) -> Vec<usize> {
    debug_assert!(words.len() > spares);
    let n = words.len();
    let mut best: Option<(usize, u64, Vec<usize>)> = None;
    // Enumerate every subset of exactly `spares` words.
    for mask in 0u64..(1u64 << n) {
        if mask.count_ones() as usize != spares {
            continue;
        }
        let subset: Vec<usize> = (0..n).filter(|&i| mask & (1 << i) != 0).collect();
        let must = subset.iter().filter(|&&i| words[i].must_repair).count();
        let weight: u64 = subset.iter().map(|&i| words[i].weight).sum();
        let better = match &best {
            None => true,
            Some((best_must, best_weight, best_subset)) => (must, weight)
                .cmp(&(*best_must, *best_weight))
                .then_with(|| best_subset.cmp(&subset))
                .is_gt(),
        };
        if better {
            best = Some((must, weight, subset));
        }
    }
    best.map(|(_, _, subset)| subset).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::localise::DefectEvidence;
    use twm_mem::{BitAddress, Fault, MemoryBuilder, Word};

    fn defect(word: usize, bit: usize, confidence: f64) -> LocatedDefect {
        LocatedDefect {
            cell: BitAddress::new(word, bit),
            hypothesis: None,
            stuck_value: None,
            confidence,
            evidence: DefectEvidence::default(),
        }
    }

    #[test]
    fn enough_spares_cover_everything() {
        let allocator = RepairAllocator::default();
        let defects = vec![defect(1, 0, 0.9), defect(5, 3, 0.7), defect(1, 2, 0.4)];
        let plan = allocator.allocate(&defects, 4);
        assert!(plan.fully_repairs());
        assert!(plan.covers_must_repair());
        assert_eq!(plan.assignments.len(), 2);
        assert_eq!(plan.assignments[0].word, 1);
        assert_eq!(plan.assignments[0].spare, 0);
        assert_eq!(plan.assignments[0].defects.len(), 2);
        assert_eq!(plan.assignments[1].word, 5);
        assert_eq!(plan.assignments[1].spare, 1);
        assert_eq!(plan.must_repair_words, vec![1, 5]);
    }

    #[test]
    fn exact_prefers_must_repair_over_many_weak_defects() {
        let allocator = RepairAllocator::default();
        // Word 2 hosts three weak hypotheses (total weight 900), word 7 one
        // strongly confirmed defect (weight 800, must-repair).
        let defects = vec![
            defect(2, 0, 0.3),
            defect(2, 1, 0.3),
            defect(2, 2, 0.3),
            defect(7, 4, 0.8),
        ];
        let plan = allocator.allocate(&defects, 1);
        assert_eq!(plan.assignments.len(), 1);
        assert_eq!(plan.assignments[0].word, 7);
        assert!(plan.covers_must_repair());
        assert!(!plan.fully_repairs());
        assert_eq!(plan.unrepaired.len(), 3);

        // The pure-greedy fallback ranks must-repair first too.
        let greedy = RepairAllocator::new(AllocatorOptions {
            exact: false,
            ..AllocatorOptions::default()
        })
        .allocate(&defects, 1);
        assert_eq!(greedy.assignments, plan.assignments);
    }

    #[test]
    fn weight_breaks_ties_without_must_repair() {
        let allocator = RepairAllocator::default();
        let defects = vec![defect(0, 0, 0.4), defect(3, 1, 0.5), defect(9, 2, 0.2)];
        let plan = allocator.allocate(&defects, 2);
        let words: Vec<usize> = plan.assignments.iter().map(|a| a.word).collect();
        assert_eq!(words, vec![0, 3]);
        assert_eq!(plan.unrepaired.len(), 1);
        assert_eq!(plan.unrepaired[0].cell.word, 9);
        assert!(plan.must_repair_words.is_empty());
        assert!(plan.covers_must_repair());
    }

    #[test]
    fn confidence_floor_filters_noise() {
        let allocator = RepairAllocator::new(AllocatorOptions {
            confidence_floor: 0.5,
            ..AllocatorOptions::default()
        });
        let plan = allocator.allocate(&[defect(1, 0, 0.2), defect(2, 0, 0.9)], 4);
        assert_eq!(plan.assignments.len(), 1);
        assert_eq!(plan.assignments[0].word, 2);
        // The filtered defect is neither assigned nor reported unrepaired.
        assert!(plan.fully_repairs());
    }

    #[test]
    fn zero_spares_leave_everything_unrepaired() {
        let plan = RepairAllocator::default().allocate(&[defect(4, 1, 0.9)], 0);
        assert!(plan.is_empty());
        assert!(!plan.fully_repairs());
        assert!(!plan.covers_must_repair());
        assert_eq!(plan.unrepaired.len(), 1);
    }

    #[test]
    fn apply_programs_the_remap_table() {
        let faulty = MemoryBuilder::new(8, 4)
            .random_content(3)
            .fault(Fault::stuck_at(BitAddress::new(6, 1), true))
            .build()
            .unwrap();
        let mut memory = RepairableMemory::new(faulty, 2).unwrap();
        let plan = RepairAllocator::default().allocate(&[defect(6, 1, 0.9)], 2);
        plan.apply(&mut memory).unwrap();
        assert_eq!(memory.mapped_spare(6), Some(0));
        memory.write_word(6, Word::zeros(4)).unwrap();
        assert!(memory.read_word(6).unwrap().is_zero());
        // Applying twice fails (slot in use / word remapped).
        assert!(plan.apply(&mut memory).is_err());
    }

    #[test]
    fn greedy_and_exact_agree_when_spares_suffice() {
        let defects: Vec<LocatedDefect> =
            (0..6).map(|w| defect(w, 0, 0.1 + 0.1 * w as f64)).collect();
        let exact = RepairAllocator::default().allocate(&defects, 6);
        let greedy = RepairAllocator::new(AllocatorOptions {
            exact: false,
            ..AllocatorOptions::default()
        })
        .allocate(&defects, 6);
        assert_eq!(exact.assignments, greedy.assignments);
        assert!(exact.fully_repairs());
    }
}
