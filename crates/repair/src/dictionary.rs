//! Signature dictionaries: fault → MISR signature trail, inverted into
//! ambiguity classes.
//!
//! A failing transparent BIST session yields one observable: the MISR
//! signature (and, with the staged session hook, the signature after every
//! march element). A *signature dictionary* precomputes that observable for
//! every fault of a universe — and for sampled multi-fault injections —
//! under a reference initial content, then inverts the mapping: faults that
//! produce the same trail form an **ambiguity class**, the unit a
//! diagnosis can resolve to from signatures alone. The
//! [`crate::DiagnosticSession`] then refines an ambiguity class with
//! content-independent follow-up evidence.
//!
//! Builds run in parallel through the same [`Strategy`] machinery as the
//! coverage engine and are **bit-identical for any worker-thread count**:
//! every injection's trail is computed independently and the grouping pass
//! is serial in universe order (property-tested in
//! `tests/repair_properties.rs`).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use twm_bist::{run_scheme_session_staged, Misr};
use twm_core::scheme::SchemeId;
use twm_coverage::{ContentPolicy, CoverageEngine, Strategy};
use twm_mem::{Fault, FaultSet, FaultyMemory, MemoryConfig, SplitMix64, Word};

use crate::RepairError;

/// The ordered MISR signature trail of one session: the predicted
/// signature followed by the cumulative test-phase signature after each
/// transparent-test element (see
/// [`twm_bist::StagedSessionOutcome::signature_trail`]).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SignatureTrail(Vec<Word>);

impl SignatureTrail {
    /// Wraps a raw signature sequence.
    #[must_use]
    pub fn new(signatures: Vec<Word>) -> Self {
        Self(signatures)
    }

    /// The signatures, in session order.
    #[must_use]
    pub fn signatures(&self) -> &[Word] {
        &self.0
    }

    /// Number of signatures in the trail.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the trail is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The signature-wise XOR of two trails of the same shape.
    ///
    /// MISR compaction is linear over GF(2), so trail differences compose
    /// by XOR — the primitive behind content-normalised lookup
    /// ([`crate::TrailLookup::find_normalised`]).
    ///
    /// # Errors
    ///
    /// * [`RepairError::TrailShapeMismatch`] if the trails hold different
    ///   signature counts.
    /// * [`RepairError::Mem`] if paired signatures differ in width.
    pub fn xor(&self, other: &SignatureTrail) -> Result<SignatureTrail, RepairError> {
        if self.0.len() != other.0.len() {
            return Err(RepairError::TrailShapeMismatch {
                left: self.0.len(),
                right: other.0.len(),
            });
        }
        let words = self
            .0
            .iter()
            .zip(&other.0)
            .map(|(&a, &b)| a.checked_xor(b))
            .collect::<Result<Vec<Word>, _>>()?;
        Ok(SignatureTrail::new(words))
    }
}

/// Faults (and multi-fault injections) sharing one signature trail — the
/// resolution limit of signature-only diagnosis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AmbiguityClass {
    /// The shared trail.
    pub trail: SignatureTrail,
    /// The injections producing it, in universe order. Single faults are
    /// one-element injections; sampled multi-fault injections list every
    /// simultaneous fault.
    pub injections: Vec<Vec<Fault>>,
}

impl AmbiguityClass {
    /// Every distinct fault appearing in the class's injections, in first
    /// appearance order.
    #[must_use]
    pub fn faults(&self) -> Vec<Fault> {
        let mut faults = Vec::new();
        for injection in &self.injections {
            for &fault in injection {
                if !faults.contains(&fault) {
                    faults.push(fault);
                }
            }
        }
        faults
    }
}

/// Ambiguity statistics of a dictionary — the paper-relevant "how
/// diagnosable is this scheme" summary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AmbiguityStats {
    /// Signature-detectable injections indexed.
    pub indexed: usize,
    /// Number of distinct signature trails (ambiguity classes).
    pub classes: usize,
    /// Size of the largest ambiguity class.
    pub max_class_size: usize,
    /// Injections alone in their class (uniquely diagnosable from the
    /// signature trail).
    pub distinguishable: usize,
    /// Injections whose trail equals the fault-free one (undetectable by
    /// signature under the reference content).
    pub undetected: usize,
}

impl AmbiguityStats {
    /// Fraction of indexed injections that are uniquely diagnosable.
    #[must_use]
    pub fn distinguishable_fraction(&self) -> f64 {
        if self.indexed == 0 {
            1.0
        } else {
            self.distinguishable as f64 / self.indexed as f64
        }
    }
}

/// Options for [`SignatureDictionary::build`].
#[derive(Debug, Clone)]
pub struct DictionaryOptions {
    /// Worker-thread strategy for the build (default: [`Strategy::Auto`]).
    /// The produced dictionary is bit-identical for any resolved count.
    pub strategy: Strategy,
    /// Number of two-fault injections to sample on top of the single-fault
    /// universe (default: 0). Sampled pairs are pre-filtered through
    /// [`CoverageEngine::injection_detected`], so only exact-oracle
    /// detectable injections are indexed.
    pub multi_fault_samples: usize,
    /// Seed of the deterministic pair sampler.
    pub sample_seed: u64,
    /// MISR template; `None` uses [`Misr::standard`] for the memory width.
    pub misr: Option<Misr>,
}

impl Default for DictionaryOptions {
    fn default() -> Self {
        Self {
            strategy: Strategy::Auto,
            multi_fault_samples: 0,
            sample_seed: 0xD1C7,
            misr: None,
        }
    }
}

/// A compact sorted index from signature trails to ambiguity classes.
///
/// Built once per `(scheme engine, fault universe)` pair; looked up by
/// [`SignatureDictionary::lookup`] with an observed trail. See the
/// [module docs](self).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignatureDictionary {
    scheme: SchemeId,
    test_name: String,
    config: MemoryConfig,
    content: ContentPolicy,
    /// The (reset) MISR template trails were compacted with — recorded so
    /// a session can refuse a dictionary whose signatures it could never
    /// reproduce.
    misr: Misr,
    /// Classes sorted by trail, the binary-search index.
    classes: Vec<AmbiguityClass>,
    /// Injections not signature-detectable under the reference content.
    undetected: Vec<Vec<Fault>>,
    fault_free: SignatureTrail,
    indexed: usize,
}

impl SignatureDictionary {
    /// Builds the dictionary for a scheme engine over a fault universe.
    ///
    /// The engine must have been built through
    /// [`CoverageEngine::for_scheme`] (the session needs the scheme's
    /// prediction structure); the reference initial content is the engine's
    /// [`ContentPolicy`] (round 0 for the random policy). Every fault of
    /// `universe` is indexed as a single-fault injection;
    /// [`DictionaryOptions::multi_fault_samples`] adds sampled two-fault
    /// injections gated by [`CoverageEngine::injection_detected`].
    ///
    /// # Errors
    ///
    /// * [`RepairError::MissingScheme`] for an engine without a scheme
    ///   transform.
    /// * [`RepairError::EmptyUniverse`] for an empty universe.
    /// * [`RepairError::MisrWidthMismatch`] for a MISR template of the
    ///   wrong width.
    /// * [`RepairError::Coverage`] for strategy resolution failures
    ///   (`Parallel { threads: 0 }`).
    /// * [`RepairError::Mem`] / [`RepairError::Bist`] if an injection does
    ///   not fit the memory or a session fails.
    pub fn build(
        engine: &CoverageEngine,
        universe: &[Fault],
        options: &DictionaryOptions,
    ) -> Result<Self, RepairError> {
        Ok(DictionaryStream::build(engine, universe, options)?.into_dictionary())
    }

    /// Reassembles a dictionary from previously produced parts — the
    /// rehydration path for serialised or paged dictionaries
    /// (`twm-store`'s `PagedDictionary::read_dictionary`).
    ///
    /// `misr` may be in any run state; it is reset to a template. `classes`
    /// must be strictly sorted by trail (the binary-search invariant
    /// [`SignatureDictionary::build`] guarantees), every trail must share
    /// the fault-free trail's shape, and no class may sit on the fault-free
    /// trail itself.
    ///
    /// # Errors
    ///
    /// * [`RepairError::MisrWidthMismatch`] for a MISR of the wrong width.
    /// * [`RepairError::InvalidDictionary`] when the parts violate the
    ///   invariants above.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        scheme: SchemeId,
        test_name: String,
        config: MemoryConfig,
        content: ContentPolicy,
        misr: Misr,
        fault_free: SignatureTrail,
        classes: Vec<AmbiguityClass>,
        undetected: Vec<Vec<Fault>>,
    ) -> Result<Self, RepairError> {
        if misr.width() != config.width() {
            return Err(RepairError::MisrWidthMismatch {
                misr: misr.width(),
                memory: config.width(),
            });
        }
        let mut indexed = 0usize;
        for (position, class) in classes.iter().enumerate() {
            if class.trail.len() != fault_free.len() {
                return Err(RepairError::InvalidDictionary(format!(
                    "class {position} trail holds {} signatures, expected {}",
                    class.trail.len(),
                    fault_free.len()
                )));
            }
            if class.trail == fault_free {
                return Err(RepairError::InvalidDictionary(format!(
                    "class {position} sits on the fault-free trail"
                )));
            }
            if class.injections.is_empty() {
                return Err(RepairError::InvalidDictionary(format!(
                    "class {position} holds no injections"
                )));
            }
            if let Some(previous) = position.checked_sub(1) {
                if classes[previous].trail >= class.trail {
                    return Err(RepairError::InvalidDictionary(format!(
                        "classes are not strictly sorted by trail at position {position}"
                    )));
                }
            }
            indexed += class.injections.len();
        }
        let mut misr_template = misr;
        misr_template.reset();
        Ok(Self {
            scheme,
            test_name,
            config,
            content,
            misr: misr_template,
            classes,
            undetected,
            fault_free,
            indexed,
        })
    }

    /// The scheme the dictionary's sessions ran under.
    #[must_use]
    pub fn scheme(&self) -> SchemeId {
        self.scheme
    }
}

/// A dictionary build that **streams** its ambiguity classes out in sorted
/// trail order instead of collecting them — the construction half of the
/// out-of-core path (`twm-store`'s `PagedDictionary::build_to_disk` writes
/// each drained class straight to its paged file).
///
/// All build-wide metadata (scheme, shapes, the fault-free trail, the
/// undetected injections) is available **before** the first class is
/// drained, so a disk writer can lay out its header up front. Draining the
/// stream into [`DictionaryStream::into_dictionary`] reproduces
/// [`SignatureDictionary::build`] bit-for-bit.
///
/// The trail computation and grouping still run in RAM (the universe is
/// simulated and sorted in-process); what streaming removes is the second
/// materialised copy of every class on the consumer side. An external-sort
/// build for universes whose *trail map* outgrows RAM is a documented next
/// rung in the ROADMAP.
#[derive(Debug)]
pub struct DictionaryStream {
    scheme: SchemeId,
    test_name: String,
    config: MemoryConfig,
    content: ContentPolicy,
    misr: Misr,
    fault_free: SignatureTrail,
    undetected: Vec<Vec<Fault>>,
    indexed: usize,
    class_count: usize,
    classes: std::collections::btree_map::IntoIter<SignatureTrail, Vec<Vec<Fault>>>,
}

impl DictionaryStream {
    /// Runs the dictionary build and returns the draining stream. Inputs,
    /// validation and errors are exactly those of
    /// [`SignatureDictionary::build`].
    ///
    /// # Errors
    ///
    /// See [`SignatureDictionary::build`].
    pub fn build(
        engine: &CoverageEngine,
        universe: &[Fault],
        options: &DictionaryOptions,
    ) -> Result<Self, RepairError> {
        if universe.is_empty() {
            return Err(RepairError::EmptyUniverse);
        }
        let transform = engine
            .scheme_transform()
            .ok_or(RepairError::MissingScheme)?;
        let config = engine.config();
        let misr = match &options.misr {
            Some(misr) => {
                if misr.width() != config.width() {
                    return Err(RepairError::MisrWidthMismatch {
                        misr: misr.width(),
                        memory: config.width(),
                    });
                }
                misr.clone()
            }
            None => Misr::standard(config.width()),
        };
        let threads = options.strategy.worker_threads()?;
        let content = engine.options().content;

        // The fault-free reference trail: what a healthy session produces.
        let fault_free = {
            let mut memory = FaultyMemory::fault_free(config);
            apply_content(&mut memory, content);
            let staged = run_scheme_session_staged(transform, &mut memory, misr.clone())?;
            SignatureTrail::new(staged.signature_trail())
        };

        // The injection list: the whole single-fault universe, then the
        // deterministic sample of exact-oracle-detectable fault pairs.
        let mut injections: Vec<Vec<Fault>> = universe.iter().map(|&fault| vec![fault]).collect();
        if options.multi_fault_samples > 0 && universe.len() >= 2 {
            let mut rng = SplitMix64::new(options.sample_seed);
            let mut attempts = 0usize;
            let budget = options.multi_fault_samples.saturating_mul(16);
            let mut sampled = 0usize;
            // Injection order does not matter to the simulated behaviour,
            // so (a, b) and (b, a) are one logical injection: dedup on the
            // normalised index pair, or repeats would inflate class sizes
            // and deflate the distinguishable fraction.
            let mut seen_pairs = std::collections::BTreeSet::new();
            while sampled < options.multi_fault_samples && attempts < budget {
                attempts += 1;
                let a = rng.next_below(universe.len());
                let b = rng.next_below(universe.len());
                if a == b || !seen_pairs.insert((a.min(b), a.max(b))) {
                    continue;
                }
                let pair = vec![universe[a], universe[b]];
                // A pair must be a valid simultaneous injection (no
                // self-coupling interactions to worry about here — fault
                // sets allow arbitrary combinations) and detectable by the
                // engine's exact oracle to be worth indexing.
                if engine.injection_detected(&pair)? {
                    injections.push(pair);
                    sampled += 1;
                }
            }
        }

        // Trail computation fans across the strategy's workers; the chunks
        // preserve injection order, so the serial grouping below sees the
        // same sequence for any thread count.
        let trails = compute_trails(&injections, config, content, transform, &misr, threads)?;

        let mut by_trail: BTreeMap<SignatureTrail, Vec<Vec<Fault>>> = BTreeMap::new();
        let mut undetected = Vec::new();
        let mut indexed = 0usize;
        for (injection, trail) in injections.into_iter().zip(trails) {
            if trail == fault_free {
                undetected.push(injection);
            } else {
                by_trail.entry(trail).or_default().push(injection);
                indexed += 1;
            }
        }
        let mut misr_template = misr;
        misr_template.reset();
        Ok(Self {
            scheme: transform.scheme(),
            test_name: transform.transparent_test().name().to_string(),
            config,
            content,
            misr: misr_template,
            fault_free,
            undetected,
            indexed,
            class_count: by_trail.len(),
            classes: by_trail.into_iter(),
        })
    }

    /// Drains every remaining class and assembles the in-RAM dictionary —
    /// [`SignatureDictionary::build`] is exactly this over a fresh stream.
    #[must_use]
    pub fn into_dictionary(mut self) -> SignatureDictionary {
        let classes: Vec<AmbiguityClass> = self.by_ref().collect();
        SignatureDictionary {
            scheme: self.scheme,
            test_name: self.test_name,
            config: self.config,
            content: self.content,
            misr: self.misr,
            classes,
            undetected: self.undetected,
            fault_free: self.fault_free,
            indexed: self.indexed,
        }
    }

    /// The scheme the dictionary's sessions ran under.
    #[must_use]
    pub fn scheme(&self) -> SchemeId {
        self.scheme
    }

    /// Name of the transparent test the trails were produced by.
    #[must_use]
    pub fn test_name(&self) -> &str {
        &self.test_name
    }

    /// The memory shape the dictionary is being built for.
    #[must_use]
    pub fn config(&self) -> MemoryConfig {
        self.config
    }

    /// The reference initial-content policy trails are measured under.
    #[must_use]
    pub fn content(&self) -> ContentPolicy {
        self.content
    }

    /// The (reset) MISR template the trails are compacted with.
    #[must_use]
    pub fn misr_template(&self) -> &Misr {
        &self.misr
    }

    /// The fault-free reference trail.
    #[must_use]
    pub fn fault_free_trail(&self) -> &SignatureTrail {
        &self.fault_free
    }

    /// Injections that are not signature-detectable under the reference
    /// content.
    #[must_use]
    pub fn undetected(&self) -> &[Vec<Fault>] {
        &self.undetected
    }

    /// Consumes the stream's undetected injections (for writers that
    /// persist them after draining the classes).
    #[must_use]
    pub fn take_undetected(&mut self) -> Vec<Vec<Fault>> {
        std::mem::take(&mut self.undetected)
    }

    /// Signature-detectable injections indexed across all classes.
    #[must_use]
    pub fn indexed(&self) -> usize {
        self.indexed
    }

    /// Total number of ambiguity classes the stream yields (known before
    /// the first drain).
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.class_count
    }
}

impl Iterator for DictionaryStream {
    type Item = AmbiguityClass;

    fn next(&mut self) -> Option<AmbiguityClass> {
        self.classes
            .next()
            .map(|(trail, injections)| AmbiguityClass { trail, injections })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.classes.size_hint()
    }
}

impl ExactSizeIterator for DictionaryStream {}

impl SignatureDictionary {
    /// Name of the transparent test the trails were produced by.
    #[must_use]
    pub fn test_name(&self) -> &str {
        &self.test_name
    }

    /// The memory shape the dictionary was built for.
    #[must_use]
    pub fn config(&self) -> MemoryConfig {
        self.config
    }

    /// The reference initial-content policy trails were measured under.
    #[must_use]
    pub fn content(&self) -> ContentPolicy {
        self.content
    }

    /// The (reset) MISR template the trails were compacted with.
    #[must_use]
    pub fn misr(&self) -> &Misr {
        &self.misr
    }

    /// The fault-free reference trail.
    #[must_use]
    pub fn fault_free_trail(&self) -> &SignatureTrail {
        &self.fault_free
    }

    /// The ambiguity classes, sorted by trail.
    #[must_use]
    pub fn classes(&self) -> &[AmbiguityClass] {
        &self.classes
    }

    /// Injections that are not signature-detectable under the reference
    /// content.
    #[must_use]
    pub fn undetected(&self) -> &[Vec<Fault>] {
        &self.undetected
    }

    /// Looks up an observed signature trail, returning its ambiguity class
    /// if any indexed injection produces it.
    #[must_use]
    pub fn lookup(&self, trail: &SignatureTrail) -> Option<&AmbiguityClass> {
        self.classes
            .binary_search_by(|class| class.trail.cmp(trail))
            .ok()
            .map(|index| &self.classes[index])
    }

    /// The ambiguity statistics of the dictionary.
    #[must_use]
    pub fn stats(&self) -> AmbiguityStats {
        AmbiguityStats {
            indexed: self.indexed,
            classes: self.classes.len(),
            max_class_size: self
                .classes
                .iter()
                .map(|class| class.injections.len())
                .max()
                .unwrap_or(0),
            distinguishable: self
                .classes
                .iter()
                .filter(|class| class.injections.len() == 1)
                .count(),
            undetected: self.undetected.len(),
        }
    }
}

/// Applies a reference content policy to a freshly built memory (round 0
/// of the engine's prepared contents).
pub(crate) fn apply_content(memory: &mut FaultyMemory, content: ContentPolicy) {
    match content {
        ContentPolicy::Zeros => {}
        ContentPolicy::Random { seed } => memory.fill_random(seed),
    }
}

/// Computes every injection's signature trail, fanning chunks across
/// `threads` workers. Chunk boundaries preserve order, so the merged
/// result is identical for any thread count.
fn compute_trails(
    injections: &[Vec<Fault>],
    config: MemoryConfig,
    content: ContentPolicy,
    transform: &twm_core::scheme::SchemeTransform,
    misr: &Misr,
    threads: usize,
) -> Result<Vec<SignatureTrail>, RepairError> {
    let trail_of = |injection: &Vec<Fault>| -> Result<SignatureTrail, RepairError> {
        let mut memory =
            FaultyMemory::with_faults(config, FaultSet::from_faults(injection.iter().copied()))?;
        apply_content(&mut memory, content);
        let staged = run_scheme_session_staged(transform, &mut memory, misr.clone())?;
        Ok(SignatureTrail::new(staged.signature_trail()))
    };

    let workers = threads.min(injections.len()).max(1);
    if workers <= 1 {
        return injections.iter().map(trail_of).collect();
    }
    let chunk_size = injections.len().div_ceil(workers);
    let results: Vec<Result<SignatureTrail, RepairError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = injections
            .chunks(chunk_size)
            .map(|chunk| scope.spawn(move || chunk.iter().map(trail_of).collect::<Vec<_>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| handle.join().expect("dictionary worker panicked"))
            .collect()
    });
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use twm_core::scheme::SchemeRegistry;
    use twm_march::algorithms::march_c_minus;
    use twm_mem::BitAddress;

    const SEED: u64 = 41;

    fn scheme_engine(words: usize, width: usize, id: SchemeId) -> CoverageEngine {
        let config = MemoryConfig::new(words, width).unwrap();
        let registry = SchemeRegistry::all(width).unwrap();
        CoverageEngine::for_scheme(registry.get(id).unwrap(), &march_c_minus(), config)
            .unwrap()
            .content(ContentPolicy::Random { seed: SEED })
            .build()
            .unwrap()
    }

    fn saf_tf_universe(config: MemoryConfig) -> Vec<Fault> {
        twm_coverage::UniverseBuilder::new(config)
            .stuck_at()
            .transition()
            .build()
    }

    #[test]
    fn build_validates_inputs() {
        let engine = scheme_engine(4, 4, SchemeId::TwmTa);
        assert_eq!(
            SignatureDictionary::build(&engine, &[], &DictionaryOptions::default()).unwrap_err(),
            RepairError::EmptyUniverse
        );

        let config = MemoryConfig::new(4, 4).unwrap();
        let plain = CoverageEngine::builder(config)
            .test(&march_c_minus())
            .build()
            .unwrap();
        assert_eq!(
            SignatureDictionary::build(
                &plain,
                &saf_tf_universe(config),
                &DictionaryOptions::default()
            )
            .unwrap_err(),
            RepairError::MissingScheme
        );

        assert!(matches!(
            SignatureDictionary::build(
                &engine,
                &saf_tf_universe(config),
                &DictionaryOptions {
                    misr: Some(Misr::standard(8)),
                    ..DictionaryOptions::default()
                }
            ),
            Err(RepairError::MisrWidthMismatch { misr: 8, memory: 4 })
        ));
        assert!(matches!(
            SignatureDictionary::build(
                &engine,
                &saf_tf_universe(config),
                &DictionaryOptions {
                    strategy: Strategy::Parallel { threads: 0 },
                    ..DictionaryOptions::default()
                }
            ),
            Err(RepairError::Coverage(_))
        ));
    }

    #[test]
    fn every_indexed_fault_is_found_by_its_own_trail() {
        let engine = scheme_engine(6, 4, SchemeId::TwmTa);
        let universe = saf_tf_universe(engine.config());
        let dictionary =
            SignatureDictionary::build(&engine, &universe, &DictionaryOptions::default()).unwrap();
        let stats = dictionary.stats();
        assert_eq!(stats.indexed + stats.undetected, universe.len());
        assert!(stats.indexed > 0);
        assert!(stats.classes <= stats.indexed);
        assert!(stats.distinguishable_fraction() > 0.0);
        for class in dictionary.classes() {
            assert_eq!(dictionary.lookup(&class.trail), Some(class));
            assert_ne!(&class.trail, dictionary.fault_free_trail());
            assert!(!class.faults().is_empty());
        }
        // A trail nobody produces misses.
        let absent = SignatureTrail::new(vec![Word::ones(4); 3]);
        if dictionary.lookup(&absent).is_some() {
            // Astronomically unlikely, but keep the assertion honest.
            assert!(dictionary.classes().iter().any(|c| c.trail == absent));
        }
    }

    #[test]
    fn multi_fault_samples_are_gated_by_injection_detected() {
        let engine = scheme_engine(4, 4, SchemeId::TwmTa);
        let universe = saf_tf_universe(engine.config());
        let dictionary = SignatureDictionary::build(
            &engine,
            &universe,
            &DictionaryOptions {
                multi_fault_samples: 12,
                ..DictionaryOptions::default()
            },
        )
        .unwrap();
        let pairs: Vec<&Vec<Fault>> = dictionary
            .classes()
            .iter()
            .flat_map(|class| &class.injections)
            .filter(|injection| injection.len() == 2)
            .collect();
        assert!(!pairs.is_empty());
        for pair in pairs {
            assert!(engine.injection_detected(pair).unwrap());
        }
    }

    #[test]
    fn prediction_free_schemes_build_dictionaries_too() {
        let engine = scheme_engine(4, 4, SchemeId::Tomt);
        let universe = saf_tf_universe(engine.config());
        let dictionary =
            SignatureDictionary::build(&engine, &universe, &DictionaryOptions::default()).unwrap();
        assert_eq!(dictionary.scheme(), SchemeId::Tomt);
        assert!(dictionary.stats().indexed > 0);
    }

    #[test]
    fn known_fault_lookup_roundtrip() {
        let engine = scheme_engine(6, 4, SchemeId::TwmTa);
        let fault = Fault::stuck_at(BitAddress::new(3, 2), true);
        let universe = saf_tf_universe(engine.config());
        let dictionary =
            SignatureDictionary::build(&engine, &universe, &DictionaryOptions::default()).unwrap();

        // Reproduce the observation: same content, same session, and the
        // lookup must return a class containing the injected fault.
        let mut memory =
            FaultyMemory::with_faults(engine.config(), FaultSet::from_faults([fault])).unwrap();
        apply_content(&mut memory, engine.options().content);
        let staged = run_scheme_session_staged(
            engine.scheme_transform().unwrap(),
            &mut memory,
            Misr::standard(4),
        )
        .unwrap();
        let observed = SignatureTrail::new(staged.signature_trail());
        let class = dictionary.lookup(&observed).expect("trail is indexed");
        assert!(class.faults().contains(&fault));
    }
}
