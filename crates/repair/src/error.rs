use std::error::Error;
use std::fmt;

use twm_bist::BistError;
use twm_core::CoreError;
use twm_coverage::CoverageError;
use twm_mem::MemError;

/// Errors produced by the repair subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RepairError {
    /// An underlying memory-simulator error.
    Mem(MemError),
    /// An underlying BIST-engine error.
    Bist(BistError),
    /// An underlying coverage-engine error.
    Coverage(CoverageError),
    /// An underlying scheme-transformation error.
    Core(CoreError),
    /// A dictionary build was asked for on an engine that carries no scheme
    /// transform (build the engine via `CoverageEngine::for_scheme`).
    MissingScheme,
    /// A dictionary build was given an empty fault universe.
    EmptyUniverse,
    /// A diagnostic session was built from a registry with no schemes —
    /// there would be nothing to run, probe or verify with.
    EmptyRegistry,
    /// A session's MISR template differs from the one an attached
    /// dictionary's trails were compacted with — its signatures could
    /// never match, so every lookup would silently miss.
    MisrMismatch,
    /// A MISR template of the wrong width was supplied.
    MisrWidthMismatch {
        /// Width of the supplied MISR.
        misr: usize,
        /// Word width of the memory configuration.
        memory: usize,
    },
    /// A dictionary or session was used against a different memory shape
    /// than it was built for.
    ConfigMismatch,
    /// The diagnostic registry targets a different word width than the
    /// memory.
    WidthMismatch {
        /// Word width of the registry's schemes.
        registry: usize,
        /// Word width of the memory.
        memory: usize,
    },
    /// Two signature trails of different lengths were combined — they can
    /// never describe the same session shape.
    TrailShapeMismatch {
        /// Signature count of the left trail.
        left: usize,
        /// Signature count of the right trail.
        right: usize,
    },
    /// A trail-lookup backend failed to serve a query (an I/O failure or
    /// on-disk corruption in a paged dictionary) — the message carries the
    /// backend's own error rendering.
    Lookup(String),
    /// Dictionary parts do not assemble into a valid dictionary (unsorted
    /// classes, shape mismatches, a class on the fault-free trail).
    InvalidDictionary(String),
}

impl fmt::Display for RepairError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairError::Mem(e) => write!(f, "memory error: {e}"),
            RepairError::Bist(e) => write!(f, "bist error: {e}"),
            RepairError::Coverage(e) => write!(f, "coverage error: {e}"),
            RepairError::Core(e) => write!(f, "scheme error: {e}"),
            RepairError::MissingScheme => write!(
                f,
                "signature dictionaries require a scheme-built engine (CoverageEngine::for_scheme)"
            ),
            RepairError::EmptyUniverse => {
                write!(
                    f,
                    "cannot build a signature dictionary over an empty universe"
                )
            }
            RepairError::EmptyRegistry => {
                write!(
                    f,
                    "a diagnostic session needs at least one registered scheme"
                )
            }
            RepairError::MisrMismatch => {
                write!(
                    f,
                    "the session's misr differs from the dictionary's — lookups could never match"
                )
            }
            RepairError::MisrWidthMismatch { misr, memory } => {
                write!(
                    f,
                    "misr width {misr} does not match the memory word width {memory}"
                )
            }
            RepairError::ConfigMismatch => {
                write!(
                    f,
                    "memory shape differs from the shape the artifact was built for"
                )
            }
            RepairError::WidthMismatch { registry, memory } => {
                write!(
                    f,
                    "scheme registry width {registry} does not match the memory width {memory}"
                )
            }
            RepairError::TrailShapeMismatch { left, right } => {
                write!(
                    f,
                    "signature trails of different lengths ({left} vs {right}) cannot be combined"
                )
            }
            RepairError::Lookup(message) => {
                write!(f, "trail-lookup backend failed: {message}")
            }
            RepairError::InvalidDictionary(message) => {
                write!(f, "invalid dictionary parts: {message}")
            }
        }
    }
}

impl Error for RepairError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RepairError::Mem(e) => Some(e),
            RepairError::Bist(e) => Some(e),
            RepairError::Coverage(e) => Some(e),
            RepairError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for RepairError {
    fn from(e: MemError) -> Self {
        RepairError::Mem(e)
    }
}

impl From<BistError> for RepairError {
    fn from(e: BistError) -> Self {
        RepairError::Bist(e)
    }
}

impl From<CoverageError> for RepairError {
    fn from(e: CoverageError) -> Self {
        RepairError::Coverage(e)
    }
}

impl From<CoreError> for RepairError {
    fn from(e: CoreError) -> Self {
        RepairError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let samples: Vec<RepairError> = vec![
            RepairError::Mem(MemError::EmptyMemory),
            RepairError::MissingScheme,
            RepairError::EmptyUniverse,
            RepairError::MisrWidthMismatch { misr: 8, memory: 4 },
            RepairError::ConfigMismatch,
            RepairError::WidthMismatch {
                registry: 8,
                memory: 4,
            },
            RepairError::TrailShapeMismatch { left: 3, right: 4 },
            RepairError::Lookup("page 3 checksum mismatch".into()),
            RepairError::InvalidDictionary("classes are not sorted".into()),
        ];
        for err in samples {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn conversions_and_source_chain() {
        let err: RepairError = MemError::EmptyMemory.into();
        assert!(matches!(err, RepairError::Mem(_)));
        assert!(err.source().is_some());
        assert!(RepairError::MissingScheme.source().is_none());
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<RepairError>();
    }
}
