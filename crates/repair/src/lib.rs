//! # twm-repair — diagnosis-to-repair for transparent BIST
//!
//! The paper's transparent BIST schemes end at a MISR pass/fail verdict;
//! the point of *periodic field test*, though, is to **act** on a failure.
//! This crate closes that loop — **detect → localise → allocate spares →
//! verify** — at engine-driven speed:
//!
//! * [`dictionary`] — [`SignatureDictionary`]: every fault of a universe
//!   (plus sampled multi-fault injections, gated by
//!   [`twm_coverage::CoverageEngine::injection_detected`]) mapped to its
//!   per-stage MISR signature trail and inverted into
//!   [`AmbiguityClass`]es; built in parallel through the coverage
//!   [`twm_coverage::Strategy`] machinery and bit-identical for any thread
//!   count.
//! * [`localise`] — [`DiagnosticSession`]: registry-driven follow-up
//!   scheme sessions, dictionary lookup and targeted fault-local probes
//!   ([`twm_bist::probe_lowered_at`]) fused with the read-log
//!   [`twm_bist::DiagnosisReport`] into ranked [`LocatedDefect`]s.
//! * [`allocator`] — [`RepairAllocator`]: greedy or
//!   exact-for-small-spare-counts assignment of
//!   [`twm_mem::RepairableMemory`] spare words to defective words,
//!   emitting a [`RepairPlan`].
//! * [`verify`] — [`verify_repair`]: the scheme session re-run through the
//!   remap table, proving the signature comes back clean.
//!
//! ## The whole loop
//!
//! ```
//! use twm_core::scheme::{SchemeId, SchemeRegistry};
//! use twm_coverage::{ContentPolicy, CoverageEngine, UniverseBuilder};
//! use twm_march::algorithms::march_c_minus;
//! use twm_mem::{BitAddress, Fault, FaultyMemory, MemoryConfig, RepairableMemory};
//! use twm_repair::{
//!     diagnose_and_repair, DiagnosticSession, DictionaryOptions, RepairAllocator,
//!     SignatureDictionary,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = MemoryConfig::new(8, 4)?;
//! let registry = SchemeRegistry::comparison(4)?;
//! let engine = CoverageEngine::for_scheme(
//!     registry.get(SchemeId::TwmTa).unwrap(),
//!     &march_c_minus(),
//!     config,
//! )?
//! .content(ContentPolicy::Random { seed: 9 })
//! .build()?;
//!
//! // Build the dictionary once per deployment.
//! let universe = UniverseBuilder::new(config).stuck_at().transition().build();
//! let dictionary = SignatureDictionary::build(&engine, &universe, &DictionaryOptions::default())?;
//!
//! // A fielded memory develops a defect.
//! let mut memory = FaultyMemory::with_faults(
//!     config,
//!     vec![Fault::stuck_at(BitAddress::new(5, 2), true)],
//! )?;
//! memory.fill_random(9); // the engine's reference content
//!
//! // Localise, allocate one of two spares, remap, re-verify.
//! let session = DiagnosticSession::new(&registry, &march_c_minus())?
//!     .with_dictionary(&dictionary)?;
//! let flow = diagnose_and_repair(
//!     &session,
//!     &RepairAllocator::default(),
//!     RepairableMemory::new(memory, 2)?,
//! )?;
//! assert_eq!(flow.localisation.defects[0].cell, BitAddress::new(5, 2));
//! assert!(flow.plan.fully_repairs());
//! assert!(flow.verification.clean());                 // signature is clean again
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod allocator;
pub mod dictionary;
mod error;
pub mod localise;
pub mod lookup;
pub mod verify;

pub use allocator::{AllocatorOptions, RepairAllocator, RepairAssignment, RepairPlan};
pub use dictionary::{
    AmbiguityClass, AmbiguityStats, DictionaryOptions, DictionaryStream, SignatureDictionary,
    SignatureTrail,
};
pub use error::RepairError;
pub use localise::{
    localise_trail, localise_trail_normalised, DefectEvidence, DiagnosticSession,
    LocalisationOutcome, LocatedDefect, TrailDiagnosis,
};
pub use lookup::TrailLookup;
pub use verify::{verify_repair, RepairVerification};

use twm_mem::RepairableMemory;

/// The result of one end-to-end [`diagnose_and_repair`] pass.
#[derive(Debug)]
pub struct RepairFlowOutcome {
    /// The localisation evidence.
    pub localisation: LocalisationOutcome,
    /// The spare plan (already applied to [`RepairFlowOutcome::memory`]).
    pub plan: RepairPlan,
    /// The post-repair verification.
    pub verification: RepairVerification,
    /// The repaired memory, remap table programmed.
    pub memory: RepairableMemory,
}

/// Runs the whole loop on a repairable memory: localise its defects with
/// `session`, allocate its spares with `allocator`, program the remap
/// table and re-verify with the session's probe scheme.
///
/// The memory's *main* array is diagnosed; defects in words already
/// served by a spare are treated as repaired and skipped; the plan is
/// allocated against the memory's **available** spare slots and
/// translated to them — so a memory carrying earlier repairs keeps them
/// and draws from the remaining spares. The verification session runs
/// through the remap table.
///
/// # Errors
///
/// Propagates the errors of [`DiagnosticSession::localise`],
/// [`RepairPlan::apply`] and [`verify_repair`].
pub fn diagnose_and_repair(
    session: &DiagnosticSession<'_>,
    allocator: &RepairAllocator,
    mut memory: RepairableMemory,
) -> Result<RepairFlowOutcome, RepairError> {
    // Localise on the main array: the session restores the content it
    // found, so the repair below starts from the pre-diagnosis state.
    let localisation = session.localise(memory.main_mut())?;
    // Words already served by a spare are repaired — the main-array scan
    // re-flags their (masked) defects, but they need no new assignment.
    let actionable: Vec<LocatedDefect> = localisation
        .defects
        .iter()
        .filter(|defect| memory.mapped_spare(defect.cell.word).is_none())
        .cloned()
        .collect();
    let available = memory.available_spares();
    let mut plan = allocator.allocate(&actionable, available.len());
    // The allocator numbers slots 0..k over whatever budget it was given;
    // translate those ranks to the concrete free slots of this memory.
    for assignment in &mut plan.assignments {
        assignment.spare = available[assignment.spare];
    }
    plan.apply(&mut memory)?;
    let transform = session.probe_transform();
    let verification = verify_repair(transform, &mut memory, session.misr().clone())?;
    Ok(RepairFlowOutcome {
        localisation,
        plan,
        verification,
        memory,
    })
}
