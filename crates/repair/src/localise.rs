//! Adaptive fault localisation: from a failing signature to ranked,
//! cell-level defect hypotheses.
//!
//! A [`DiagnosticSession`] owns the follow-up schedule a maintenance layer
//! would run after a periodic test fails:
//!
//! 1. **Registry-driven scheme sessions** — every registered transparent
//!    scheme's session is executed on the memory under test. Each scheme
//!    exercises different patterns, so their per-cell read-log diagnoses
//!    ([`twm_bist::diagnose`], fused with
//!    [`DiagnosisReport::fuse`]) flag overlapping but not
//!    identical evidence; the signature trail of the dictionary's scheme
//!    doubles as the dictionary lookup key.
//! 2. **Signature dictionary lookup** — the observed trail resolves to an
//!    [`crate::AmbiguityClass`] when the memory's content matches the
//!    dictionary's reference content (the canonical periodic-test flow);
//!    under drifted content the lookup may miss, and the session degrades
//!    gracefully to the content-independent evidence.
//! 3. **Targeted fault-local probes** — every candidate's word footprint is
//!    re-tested in isolation with [`twm_bist::probe_lowered_at`] (the
//!    fault-local sweep the coverage engine uses, without its
//!    footprint-coverage contract), confirming or refuting the hypothesis
//!    at O(footprint) cost.
//!
//! The evidence fuses into a ranked `Vec<`[`LocatedDefect`]`>` — word, bit,
//! fault-class hypothesis and confidence — the input a
//! [`crate::RepairAllocator`] turns into a spare assignment.

use std::borrow::Cow;
use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use twm_bist::{
    diagnose, probe_lowered_at, run_scheme_session_staged, DiagnosisReport, LoweredTest, Misr,
    SessionOutcome,
};
use twm_core::scheme::{SchemeRegistry, SchemeTransform};
use twm_march::MarchTest;
use twm_mem::{BitAddress, FaultClass, FaultyMemory};

use crate::dictionary::{AmbiguityClass, SignatureTrail};
use crate::lookup::TrailLookup;
use crate::RepairError;

/// Maximum evidence points a candidate can accumulate (see
/// [`DefectEvidence::points`]).
const MAX_EVIDENCE_POINTS: u32 = 9;

/// Whether two MISR templates produce the same signatures: same register,
/// run state (absorbed words, current state) ignored — every session
/// resets its copy before use.
fn misr_templates_equal(a: &Misr, b: &Misr) -> bool {
    let mut a = a.clone();
    a.reset();
    let mut b = b.clone();
    b.reset();
    a == b
}

/// The independent evidence sources backing one located defect.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DefectEvidence {
    /// The cell belongs to a fault of the matched dictionary ambiguity
    /// class.
    pub in_ambiguity_class: bool,
    /// The fused read-log diagnosis flagged the cell.
    pub read_log_suspect: bool,
    /// An isolated probe of the cell's word footprint mismatched.
    pub local_probe: bool,
    /// Scheme sessions whose own diagnosis flagged the cell.
    pub sessions_flagged: usize,
    /// Scheme sessions run in total.
    pub sessions_run: usize,
}

impl DefectEvidence {
    /// The integer evidence score the ranking sorts by: dictionary
    /// membership and read-log evidence weigh 3 each, a confirming local
    /// probe 2, unanimity across every scheme session 1 (max 9).
    #[must_use]
    pub fn points(&self) -> u32 {
        let mut points = 0;
        if self.in_ambiguity_class {
            points += 3;
        }
        if self.read_log_suspect {
            points += 3;
        }
        if self.local_probe {
            points += 2;
        }
        if self.sessions_run > 0 && self.sessions_flagged == self.sessions_run {
            points += 1;
        }
        points
    }
}

/// One ranked defect hypothesis: a cell, an optional fault-class
/// hypothesis and the fused confidence.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocatedDefect {
    /// The suspected cell (word + bit).
    pub cell: BitAddress,
    /// Fault-class hypothesis, when the dictionary pins one. Read-log-only
    /// evidence cannot separate a stuck-at from a transition fault (the
    /// cell is only ever observed at one value), so it leaves this `None`.
    pub hypothesis: Option<FaultClass>,
    /// The constant value the cell was observed at, when all observations
    /// agree — the stuck-at-value / blocked-transition signature.
    pub stuck_value: Option<bool>,
    /// Fused confidence in `[0, 1]`: [`DefectEvidence::points`] over the
    /// maximum.
    pub confidence: f64,
    /// The individual evidence sources.
    pub evidence: DefectEvidence,
}

/// The outcome of one localisation pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalisationOutcome {
    /// Ranked defect hypotheses, most confident first.
    pub defects: Vec<LocatedDefect>,
    /// The fused per-cell read-log diagnosis across every scheme session.
    pub diagnosis: DiagnosisReport,
    /// Per-scheme session outcomes, in registry order.
    pub sessions: Vec<SessionOutcome>,
    /// Whether the observed signature trail hit the dictionary.
    pub dictionary_hit: bool,
    /// Size of the matched ambiguity class (0 on a miss or without a
    /// dictionary).
    pub ambiguity: usize,
}

impl LocalisationOutcome {
    /// Whether no session produced any evidence of a fault.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.defects.is_empty()
            && self.diagnosis.is_clean()
            && self
                .sessions
                .iter()
                .all(|outcome| !outcome.fault_detected() && !outcome.fault_detected_exact())
    }

    /// The sorted, deduplicated words hosting at least one located defect.
    #[must_use]
    pub fn defective_words(&self) -> Vec<usize> {
        let mut words: Vec<usize> = self.defects.iter().map(|defect| defect.cell.word).collect();
        words.sort_unstable();
        words.dedup();
        words
    }
}

/// The adaptive localisation driver — see the [module docs](self).
#[derive(Debug)]
pub struct DiagnosticSession<'a> {
    registry: &'a SchemeRegistry,
    transforms: Cow<'a, [SchemeTransform]>,
    dictionary: Option<&'a dyn TrailLookup>,
    misr: Misr,
}

impl<'a> DiagnosticSession<'a> {
    /// Builds a session running every scheme of `registry` on the
    /// transparent transform of `source`, with a standard MISR.
    ///
    /// # Errors
    ///
    /// * [`RepairError::EmptyRegistry`] for a registry with no schemes.
    /// * [`RepairError::Core`] if a registered scheme cannot transform
    ///   `source`.
    pub fn new(registry: &'a SchemeRegistry, source: &MarchTest) -> Result<Self, RepairError> {
        if registry.is_empty() {
            return Err(RepairError::EmptyRegistry);
        }
        let transforms = Cow::Owned(registry.transform_all(source)?);
        Ok(Self {
            registry,
            transforms,
            dictionary: None,
            misr: Misr::standard(registry.width()),
        })
    }

    /// Builds a session over **precomputed** scheme transforms — the O(1)
    /// constructor for callers that cache
    /// [`SchemeRegistry::transform_all`]'s output and build many short-lived
    /// sessions from it (the `twm-fleet` shard-runtime cache constructs one
    /// session per batch this way, paying no transform work on cache hits).
    ///
    /// `transforms` must be the registry's transforms of one source test, in
    /// registry order — exactly what [`SchemeRegistry::transform_all`]
    /// returns.
    ///
    /// # Errors
    ///
    /// * [`RepairError::EmptyRegistry`] for a registry with no schemes or an
    ///   empty transform slice.
    /// * [`RepairError::ConfigMismatch`] if the transforms do not line up
    ///   with the registry (count or scheme order).
    pub fn with_transforms(
        registry: &'a SchemeRegistry,
        transforms: &'a [SchemeTransform],
    ) -> Result<Self, RepairError> {
        if registry.is_empty() || transforms.is_empty() {
            return Err(RepairError::EmptyRegistry);
        }
        if transforms.len() != registry.len()
            || !registry
                .ids()
                .zip(transforms.iter())
                .all(|(id, transform)| transform.scheme() == id)
        {
            return Err(RepairError::ConfigMismatch);
        }
        Ok(Self {
            registry,
            transforms: Cow::Borrowed(transforms),
            dictionary: None,
            misr: Misr::standard(registry.width()),
        })
    }

    /// Attaches a signature dictionary — any [`TrailLookup`] backend, the
    /// in-RAM [`crate::SignatureDictionary`] or a paged on-disk store. Its
    /// scheme must be registered in the session's registry (the session
    /// needs to run that scheme to produce a comparable trail), its shape
    /// must match the registry width, and its MISR must equal the
    /// session's — trails compacted by different registers could never
    /// match.
    ///
    /// # Errors
    ///
    /// * [`RepairError::WidthMismatch`] if the dictionary's memory width
    ///   differs from the registry's.
    /// * [`RepairError::ConfigMismatch`] if the dictionary's scheme is not
    ///   registered.
    /// * [`RepairError::MisrMismatch`] if the dictionary was built with a
    ///   different MISR than the session's (set the session's MISR first
    ///   via [`DiagnosticSession::with_misr`] when using a custom one).
    pub fn with_dictionary(mut self, dictionary: &'a dyn TrailLookup) -> Result<Self, RepairError> {
        if dictionary.config().width() != self.registry.width() {
            return Err(RepairError::WidthMismatch {
                registry: self.registry.width(),
                memory: dictionary.config().width(),
            });
        }
        if self.registry.get(dictionary.scheme()).is_none() {
            return Err(RepairError::ConfigMismatch);
        }
        if !misr_templates_equal(&self.misr, dictionary.misr_template()) {
            return Err(RepairError::MisrMismatch);
        }
        self.dictionary = Some(dictionary);
        Ok(self)
    }

    /// Replaces the MISR template (must match the registry width and, if a
    /// dictionary is already attached, the dictionary's MISR).
    ///
    /// # Errors
    ///
    /// Returns [`RepairError::MisrWidthMismatch`] on a width mismatch and
    /// [`RepairError::MisrMismatch`] if an attached dictionary's trails
    /// were compacted with a different register.
    pub fn with_misr(mut self, misr: Misr) -> Result<Self, RepairError> {
        if misr.width() != self.registry.width() {
            return Err(RepairError::MisrWidthMismatch {
                misr: misr.width(),
                memory: self.registry.width(),
            });
        }
        if let Some(dictionary) = self.dictionary {
            if !misr_templates_equal(&misr, dictionary.misr_template()) {
                return Err(RepairError::MisrMismatch);
            }
        }
        self.misr = misr;
        Ok(self)
    }

    /// The scheme transforms the session runs, in registry order.
    #[must_use]
    pub fn transforms(&self) -> &[SchemeTransform] {
        &self.transforms
    }

    /// The MISR template the sessions compact signatures with.
    #[must_use]
    pub fn misr(&self) -> &Misr {
        &self.misr
    }

    /// Localises the defects of a memory under test.
    ///
    /// The memory is left in the state the last restoring step produces:
    /// its content is snapshotted before the follow-up runs and reloaded
    /// afterwards, so (up to the fault effects a physical memory would
    /// impose anyway) localisation does not disturb the array.
    ///
    /// # Errors
    ///
    /// * [`RepairError::ConfigMismatch`] if an attached dictionary was
    ///   built for a different memory shape.
    /// * [`RepairError::Bist`] / [`RepairError::Mem`] for session failures.
    pub fn localise(&self, memory: &mut FaultyMemory) -> Result<LocalisationOutcome, RepairError> {
        if let Some(dictionary) = self.dictionary {
            if dictionary.config() != memory.config() {
                return Err(RepairError::ConfigMismatch);
            }
        }
        let saved_content = memory.content();

        // 1. Follow-up scheme sessions: per-scheme diagnosis + outcomes,
        //    and the dictionary scheme's signature trail.
        let mut sessions = Vec::with_capacity(self.transforms.len());
        let mut reports = Vec::with_capacity(self.transforms.len());
        let mut observed_trail: Option<SignatureTrail> = None;
        for transform in self.transforms.iter() {
            // Every session starts from the content the memory was handed
            // over with: an earlier scheme's session can leave drifted
            // content (faults break preservation), which would otherwise
            // cost the dictionary scheme its trail match and make the
            // per-scheme diagnoses order-dependent.
            memory.load(&saved_content)?;
            let staged = run_scheme_session_staged(transform, memory, self.misr.clone())?;
            if self
                .dictionary
                .is_some_and(|dictionary| dictionary.scheme() == transform.scheme())
            {
                observed_trail = Some(SignatureTrail::new(staged.signature_trail()));
            }
            reports.push(diagnose(&staged.test_execution));
            sessions.push(staged.outcome);
        }
        let diagnosis = DiagnosisReport::fuse(&reports);

        // 2. Dictionary lookup: the ambiguity class seeds cell-level
        //    candidates with fault-class hypotheses.
        let matched: Option<AmbiguityClass> = match (self.dictionary, &observed_trail) {
            (Some(dictionary), Some(trail)) => dictionary.find(trail)?,
            _ => None,
        };

        // Candidate cells: dictionary class members + fused suspects.
        #[derive(Default)]
        struct Candidate {
            classes: Vec<FaultClass>,
            footprints: Vec<Vec<usize>>,
            in_class: bool,
        }
        let mut candidates: BTreeMap<BitAddress, Candidate> = BTreeMap::new();
        if let Some(class) = &matched {
            for injection in &class.injections {
                for fault in injection {
                    let candidate = candidates.entry(fault.victim()).or_default();
                    candidate.in_class = true;
                    if !candidate.classes.contains(&fault.class()) {
                        candidate.classes.push(fault.class());
                    }
                    let mut footprint: Vec<usize> =
                        fault.cells().iter().map(|cell| cell.word).collect();
                    footprint.sort_unstable();
                    footprint.dedup();
                    if !candidate.footprints.contains(&footprint) {
                        candidate.footprints.push(footprint);
                    }
                }
            }
        }
        for suspect in &diagnosis.suspects {
            let candidate = candidates.entry(suspect.cell).or_default();
            if candidate.footprints.is_empty() {
                candidate.footprints.push(vec![suspect.cell.word]);
            }
        }

        // 3. Targeted fault-local probes over each candidate footprint,
        //    cached per footprint.
        let probe = self.probe_transform();
        let lowered = LoweredTest::new(probe.transparent_test(), memory.width())
            .map_err(twm_bist::BistError::from)?;
        let mut probe_cache: BTreeMap<Vec<usize>, bool> = BTreeMap::new();
        for candidate in candidates.values() {
            for footprint in &candidate.footprints {
                if !probe_cache.contains_key(footprint) {
                    // Every probe starts from the handed-over content: the
                    // last scheme session — and any earlier probe, which
                    // can abort mid-test — leaves drift behind, and probe
                    // verdicts for state/coupling faults depend on the
                    // starting content.
                    memory.load(&saved_content)?;
                    let mismatched = probe_lowered_at(&lowered, memory, footprint)?;
                    probe_cache.insert(footprint.clone(), mismatched);
                }
            }
        }

        // 4. Fuse the evidence into ranked defects.
        let mut defects: Vec<LocatedDefect> = candidates
            .into_iter()
            .map(|(cell, candidate)| {
                let suspect = diagnosis.suspect(cell);
                let evidence = DefectEvidence {
                    in_ambiguity_class: candidate.in_class,
                    read_log_suspect: suspect.is_some(),
                    local_probe: candidate
                        .footprints
                        .iter()
                        .any(|footprint| probe_cache.get(footprint) == Some(&true)),
                    sessions_flagged: reports
                        .iter()
                        .filter(|report| report.suspect(cell).is_some())
                        .count(),
                    sessions_run: reports.len(),
                };
                let hypothesis = match candidate.classes.as_slice() {
                    [single] => Some(*single),
                    _ => None,
                };
                LocatedDefect {
                    cell,
                    hypothesis,
                    stuck_value: suspect.and_then(|s| s.constant_observation),
                    confidence: f64::from(evidence.points()) / f64::from(MAX_EVIDENCE_POINTS),
                    evidence,
                }
            })
            .filter(|defect| defect.evidence.points() > 0)
            .collect();
        defects.sort_by(|a, b| {
            b.evidence
                .points()
                .cmp(&a.evidence.points())
                .then(a.cell.cmp(&b.cell))
        });

        memory.load(&saved_content)?;

        Ok(LocalisationOutcome {
            defects,
            diagnosis,
            sessions,
            dictionary_hit: matched.is_some(),
            ambiguity: matched.as_ref().map_or(0, |class| class.injections.len()),
        })
    }

    /// The transform used for targeted probes and post-repair
    /// verification: the dictionary's scheme when attached, the first
    /// registered scheme otherwise.
    #[must_use]
    pub fn probe_transform(&self) -> &SchemeTransform {
        self.dictionary
            .and_then(|dictionary| {
                self.transforms
                    .iter()
                    .find(|transform| transform.scheme() == dictionary.scheme())
            })
            .unwrap_or(&self.transforms[0])
    }
}

/// The outcome of a **trail-only** diagnosis — what a remote service can
/// conclude from a serialised signature trail alone, without access to the
/// memory under test (see [`localise_trail`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrailDiagnosis {
    /// Ranked defect hypotheses from the matched ambiguity class (empty on
    /// a clean trail or a dictionary miss). Evidence is dictionary-only:
    /// read-log and probe evidence need the physical memory.
    pub defects: Vec<LocatedDefect>,
    /// Whether the trail hit the dictionary.
    pub dictionary_hit: bool,
    /// Size of the matched ambiguity class (0 on a miss).
    pub ambiguity: usize,
    /// Whether the trail equals the dictionary's fault-free reference.
    pub clean: bool,
}

/// Diagnoses a memory from its observed signature trail alone — the
/// server-side half of [`DiagnosticSession::localise`], for deployments
/// where only the serialised trail travels (a fleet service ingesting field
/// reports). The trail is matched against any [`TrailLookup`] backend (the
/// in-RAM dictionary or a paged on-disk store); the ambiguity class's
/// injections become ranked [`LocatedDefect`]s with dictionary-only
/// evidence ([`DefectEvidence::in_ambiguity_class`]).
///
/// The `stuck_value` hypothesis is derived from the fault model instead of
/// an observation: a stuck-at cell is constantly at its stuck value, a cell
/// with a blocked rising (falling) transition can only be observed at 0
/// (1); coupling victims carry no constant.
///
/// # Errors
///
/// [`RepairError::Lookup`] when a paged backend cannot serve the query
/// (I/O failure, on-disk corruption); the in-RAM backend never fails.
pub fn localise_trail<D: TrailLookup + ?Sized>(
    dictionary: &D,
    trail: &SignatureTrail,
) -> Result<TrailDiagnosis, RepairError> {
    if trail == dictionary.reference_trail() {
        return Ok(TrailDiagnosis {
            defects: Vec::new(),
            dictionary_hit: false,
            ambiguity: 0,
            clean: true,
        });
    }
    let Some(class) = dictionary.find(trail)? else {
        return Ok(TrailDiagnosis {
            defects: Vec::new(),
            dictionary_hit: false,
            ambiguity: 0,
            clean: false,
        });
    };

    #[derive(Default)]
    struct Candidate {
        classes: Vec<FaultClass>,
        values: Vec<Option<bool>>,
    }
    let mut candidates: BTreeMap<BitAddress, Candidate> = BTreeMap::new();
    for injection in &class.injections {
        for fault in injection {
            let candidate = candidates.entry(fault.victim()).or_default();
            if !candidate.classes.contains(&fault.class()) {
                candidate.classes.push(fault.class());
            }
            let value = match fault {
                twm_mem::Fault::StuckAt { value, .. } => Some(*value),
                twm_mem::Fault::TransitionFault { direction, .. } => match direction {
                    twm_mem::Transition::Rising => Some(false),
                    twm_mem::Transition::Falling => Some(true),
                },
                _ => None,
            };
            if !candidate.values.contains(&value) {
                candidate.values.push(value);
            }
        }
    }
    let evidence = DefectEvidence {
        in_ambiguity_class: true,
        ..DefectEvidence::default()
    };
    let defects = candidates
        .into_iter()
        .map(|(cell, candidate)| LocatedDefect {
            cell,
            hypothesis: match candidate.classes.as_slice() {
                [single] => Some(*single),
                _ => None,
            },
            stuck_value: match candidate.values.as_slice() {
                [single] => *single,
                _ => None,
            },
            confidence: f64::from(evidence.points()) / f64::from(MAX_EVIDENCE_POINTS),
            evidence,
        })
        .collect();
    Ok(TrailDiagnosis {
        defects,
        dictionary_hit: true,
        ambiguity: class.injections.len(),
        clean: false,
    })
}

/// Content-normalised [`localise_trail`]: matches `observed` after
/// absorbing `expected`, the fault-free trail of the memory's *current*
/// content, via [`TrailLookup::find_normalised`]'s GF(2) shift. A
/// normalised trail equal to the reference (i.e. `observed == expected`)
/// reports clean; with `expected` equal to the reference trail this is
/// exactly [`localise_trail`].
///
/// # Errors
///
/// * [`RepairError::TrailShapeMismatch`] / [`RepairError::Mem`] if the
///   trails disagree in shape with the dictionary's.
/// * [`RepairError::Lookup`] from a paged backend, as in
///   [`localise_trail`].
pub fn localise_trail_normalised<D: TrailLookup + ?Sized>(
    dictionary: &D,
    observed: &SignatureTrail,
    expected: &SignatureTrail,
) -> Result<TrailDiagnosis, RepairError> {
    let key = observed.xor(expected)?.xor(dictionary.reference_trail())?;
    localise_trail(dictionary, &key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::{apply_content, DictionaryOptions, SignatureDictionary};
    use twm_core::scheme::SchemeId;
    use twm_coverage::{ContentPolicy, CoverageEngine, UniverseBuilder};
    use twm_march::algorithms::march_c_minus;
    use twm_mem::{Fault, FaultSet, MemoryConfig, Transition};

    const SEED: u64 = 77;

    fn setup(words: usize, width: usize) -> (SchemeRegistry, CoverageEngine, SignatureDictionary) {
        let config = MemoryConfig::new(words, width).unwrap();
        let registry = SchemeRegistry::comparison(width).unwrap();
        let engine = CoverageEngine::for_scheme(
            registry.get(SchemeId::TwmTa).unwrap(),
            &march_c_minus(),
            config,
        )
        .unwrap()
        .content(ContentPolicy::Random { seed: SEED })
        .build()
        .unwrap();
        let universe = UniverseBuilder::new(config).stuck_at().transition().build();
        let dictionary =
            SignatureDictionary::build(&engine, &universe, &DictionaryOptions::default()).unwrap();
        (registry, engine, dictionary)
    }

    fn reference_memory(engine: &CoverageEngine, faults: &[Fault]) -> FaultyMemory {
        let mut memory = FaultyMemory::with_faults(
            engine.config(),
            FaultSet::from_faults(faults.iter().copied()),
        )
        .unwrap();
        apply_content(&mut memory, engine.options().content);
        memory
    }

    #[test]
    fn clean_memory_localises_to_nothing() {
        let (registry, engine, dictionary) = setup(6, 4);
        let session = DiagnosticSession::new(&registry, &march_c_minus())
            .unwrap()
            .with_dictionary(&dictionary)
            .unwrap();
        let mut memory = reference_memory(&engine, &[]);
        let outcome = session.localise(&mut memory).unwrap();
        assert!(outcome.is_clean());
        assert!(outcome.defects.is_empty());
        assert!(!outcome.dictionary_hit);
        assert_eq!(outcome.sessions.len(), registry.len());
    }

    #[test]
    fn stuck_at_fault_is_located_with_high_confidence() {
        let (registry, engine, dictionary) = setup(6, 4);
        let cell = BitAddress::new(4, 2);
        let fault = Fault::stuck_at(cell, true);
        let session = DiagnosticSession::new(&registry, &march_c_minus())
            .unwrap()
            .with_dictionary(&dictionary)
            .unwrap();
        let mut memory = reference_memory(&engine, &[fault]);
        let before = memory.content();
        let outcome = session.localise(&mut memory).unwrap();
        // Localisation restored the memory.
        assert_eq!(memory.content(), before);
        assert!(!outcome.is_clean());
        assert!(outcome.dictionary_hit);
        assert!(outcome.ambiguity >= 1);
        let top = outcome.defects.first().expect("a defect is located");
        assert_eq!(top.cell, cell);
        assert!(top.evidence.in_ambiguity_class);
        assert!(top.evidence.read_log_suspect);
        assert!(top.evidence.local_probe);
        assert!(top.confidence > 0.8);
        assert_eq!(top.stuck_value, Some(true));
        assert_eq!(outcome.defective_words(), vec![4]);
    }

    #[test]
    fn localisation_works_without_a_dictionary() {
        let (registry, engine, _) = setup(6, 4);
        let cell = BitAddress::new(1, 3);
        let session = DiagnosticSession::new(&registry, &march_c_minus()).unwrap();
        let mut memory = reference_memory(&engine, &[Fault::transition(cell, Transition::Rising)]);
        let outcome = session.localise(&mut memory).unwrap();
        assert!(!outcome.dictionary_hit);
        assert_eq!(outcome.ambiguity, 0);
        let top = outcome.defects.first().expect("read-log evidence suffices");
        assert_eq!(top.cell, cell);
        assert!(top.evidence.read_log_suspect);
        assert!(!top.evidence.in_ambiguity_class);
        // Read data alone cannot pin SAF vs TF.
        assert_eq!(top.hypothesis, None);
    }

    #[test]
    fn drifted_content_degrades_to_content_independent_evidence() {
        let (registry, engine, dictionary) = setup(6, 4);
        let cell = BitAddress::new(2, 0);
        let session = DiagnosticSession::new(&registry, &march_c_minus())
            .unwrap()
            .with_dictionary(&dictionary)
            .unwrap();
        // A different content than the dictionary's reference.
        let mut memory = reference_memory(&engine, &[Fault::stuck_at(cell, false)]);
        memory.fill_random(SEED ^ 0xFFFF);
        let outcome = session.localise(&mut memory).unwrap();
        // The trail may or may not hit (usually not); the located defect
        // must still name the right cell from read-log + probe evidence.
        let top = outcome.defects.first().expect("fault located");
        assert_eq!(top.cell, cell);
        assert!(top.evidence.read_log_suspect);
    }

    #[test]
    fn session_validation() {
        let (registry, _, dictionary) = setup(6, 4);
        // Mismatched registry width.
        let wide = SchemeRegistry::comparison(8).unwrap();
        assert!(matches!(
            DiagnosticSession::new(&wide, &march_c_minus())
                .unwrap()
                .with_dictionary(&dictionary),
            Err(RepairError::WidthMismatch { .. })
        ));
        // Dictionary scheme absent from the registry.
        let mut empty = SchemeRegistry::empty(4).unwrap();
        empty
            .register(Box::new(twm_core::Scheme1::new(4).unwrap()))
            .unwrap();
        assert!(matches!(
            DiagnosticSession::new(&empty, &march_c_minus())
                .unwrap()
                .with_dictionary(&dictionary),
            Err(RepairError::ConfigMismatch)
        ));
        // Wrong MISR width.
        let session = DiagnosticSession::new(&registry, &march_c_minus()).unwrap();
        assert!(matches!(
            session.with_misr(Misr::standard(16)),
            Err(RepairError::MisrWidthMismatch { .. })
        ));
        // Wrong memory shape against the dictionary.
        let session = DiagnosticSession::new(&registry, &march_c_minus())
            .unwrap()
            .with_dictionary(&dictionary)
            .unwrap();
        let mut wrong_shape = FaultyMemory::fault_free(MemoryConfig::new(12, 4).unwrap());
        assert!(matches!(
            session.localise(&mut wrong_shape),
            Err(RepairError::ConfigMismatch)
        ));

        // A dictionary built with a different MISR can never match the
        // session's trails — rejected in either attachment order.
        let custom = Misr::new(4, 0x3).unwrap();
        assert!(matches!(
            DiagnosticSession::new(&registry, &march_c_minus())
                .unwrap()
                .with_misr(custom.clone())
                .unwrap()
                .with_dictionary(&dictionary),
            Err(RepairError::MisrMismatch)
        ));
        assert!(matches!(
            DiagnosticSession::new(&registry, &march_c_minus())
                .unwrap()
                .with_dictionary(&dictionary)
                .unwrap()
                .with_misr(custom),
            Err(RepairError::MisrMismatch)
        ));
        // The matching (standard) MISR is accepted after attachment.
        assert!(DiagnosticSession::new(&registry, &march_c_minus())
            .unwrap()
            .with_dictionary(&dictionary)
            .unwrap()
            .with_misr(Misr::standard(4))
            .is_ok());
    }

    #[test]
    fn dictionary_lookup_survives_content_breaking_faults_in_multi_scheme_sessions() {
        // A coupling fault can break content preservation, so an earlier
        // scheme's session would drift the content the dictionary-scheme
        // trail is measured from — localise must restore the handed-over
        // content before every session.
        let config = MemoryConfig::new(6, 4).unwrap();
        let registry = SchemeRegistry::comparison(4).unwrap();
        let engine = CoverageEngine::for_scheme(
            registry.get(twm_core::scheme::SchemeId::TwmTa).unwrap(),
            &march_c_minus(),
            config,
        )
        .unwrap()
        .content(ContentPolicy::Random { seed: SEED })
        .build()
        .unwrap();
        let universe = twm_coverage::UniverseBuilder::new(config)
            .all_classes()
            .build();
        let dictionary =
            SignatureDictionary::build(&engine, &universe, &DictionaryOptions::default()).unwrap();
        let session = DiagnosticSession::new(&registry, &march_c_minus())
            .unwrap()
            .with_dictionary(&dictionary)
            .unwrap();

        // Count dictionary hits over a content-breaking-prone slice of the
        // universe (coupling faults) from the exact reference content.
        let mut hits = 0usize;
        let mut indexed = 0usize;
        for fault in universe
            .iter()
            .filter(|fault| fault.class().is_coupling())
            .take(60)
        {
            let mut memory = reference_memory(&engine, &[*fault]);
            let trail_known = dictionary
                .classes()
                .iter()
                .any(|class| class.injections.iter().any(|i| i.as_slice() == [*fault]));
            if !trail_known {
                continue; // not signature-detectable under the reference
            }
            indexed += 1;
            let outcome = session.localise(&mut memory).unwrap();
            if outcome.dictionary_hit {
                hits += 1;
            }
        }
        assert!(indexed > 0);
        assert_eq!(
            hits, indexed,
            "dictionary lookups must hit from the exact reference content"
        );
    }
}
