//! The [`TrailLookup`] trait: what a signature-trail diagnosis needs from
//! a dictionary, abstracted over its storage.
//!
//! Two backends implement it:
//!
//! * the in-RAM [`SignatureDictionary`] (this crate) — classes resident in
//!   a sorted `Vec`, lookups are infallible binary searches;
//! * the paged `PagedDictionary` (`twm-store`) — classes on disk behind a
//!   bounded page cache, lookups stream index pages and can fail on I/O or
//!   corruption.
//!
//! [`crate::localise_trail`] and [`crate::DiagnosticSession`] accept any
//! implementor, so a fleet shard can swap its resident dictionary for a
//! paged file without touching the diagnosis code. The trait is
//! object-safe: `&dyn TrailLookup` is the working currency.
//!
//! ## Content-normalised lookup
//!
//! Dictionary trails are measured under one reference initial content, but
//! transparent sessions run on *whatever the field memory holds*. MISR
//! compaction is linear over GF(2), so for faults whose error stream is
//! content-independent the observed trail under drifted content is the
//! reference trail's class key shifted by the expected (fault-free) trail
//! of that drifted content:
//!
//! ```text
//! observed ⊕ expected_drifted = class_key ⊕ reference
//! ```
//!
//! [`TrailLookup::find_normalised`] solves for the class key —
//! `observed ⊕ expected ⊕ reference` — and looks that up, absorbing the
//! expected-data trail so hits survive content drift. For faults whose
//! error stream *does* depend on content (a stuck-at cell's error depends
//! on the data written over it), the normalised key is a best-effort
//! projection: it degrades to a miss, never a wrong class, because only
//! exact trail matches are returned.

use twm_bist::Misr;
use twm_core::scheme::SchemeId;
use twm_coverage::ContentPolicy;
use twm_mem::MemoryConfig;

use crate::dictionary::{AmbiguityClass, AmbiguityStats, SignatureDictionary, SignatureTrail};
use crate::RepairError;

/// A queryable signature-trail dictionary — see the [module docs](self).
///
/// `Debug` keeps implementors embeddable in derived-`Debug` structs
/// ([`crate::DiagnosticSession`]); `Send + Sync` lets fleet workers share
/// one backend across threads.
pub trait TrailLookup: std::fmt::Debug + Send + Sync {
    /// The scheme the dictionary's sessions ran under.
    fn scheme(&self) -> SchemeId;

    /// Name of the transparent test the trails were produced by.
    fn test_name(&self) -> &str;

    /// The memory shape the dictionary was built for.
    fn config(&self) -> MemoryConfig;

    /// The reference initial-content policy trails were measured under.
    fn content(&self) -> ContentPolicy;

    /// The (reset) MISR template the trails were compacted with.
    fn misr_template(&self) -> &Misr;

    /// The fault-free reference trail.
    fn reference_trail(&self) -> &SignatureTrail;

    /// Looks up an observed trail, returning its ambiguity class (owned —
    /// a paged backend deserialises it from disk) on a hit.
    ///
    /// # Errors
    ///
    /// [`RepairError::Lookup`] when the backend cannot serve the query
    /// (I/O failure, on-disk corruption). The in-RAM backend never fails.
    fn find(&self, trail: &SignatureTrail) -> Result<Option<AmbiguityClass>, RepairError>;

    /// The dictionary's ambiguity statistics.
    fn ambiguity_stats(&self) -> AmbiguityStats;

    /// Content-normalised lookup: matches `observed` against the
    /// dictionary after absorbing `expected`, the fault-free trail of the
    /// memory's *current* content (see the [module docs](self)). With
    /// `expected` equal to the reference trail this is exactly
    /// [`TrailLookup::find`].
    ///
    /// # Errors
    ///
    /// * [`RepairError::TrailShapeMismatch`] / [`RepairError::Mem`] if the
    ///   trails disagree in shape with the dictionary's.
    /// * [`RepairError::Lookup`] from the backend, as in
    ///   [`TrailLookup::find`].
    fn find_normalised(
        &self,
        observed: &SignatureTrail,
        expected: &SignatureTrail,
    ) -> Result<Option<AmbiguityClass>, RepairError> {
        let key = observed.xor(expected)?.xor(self.reference_trail())?;
        self.find(&key)
    }
}

impl TrailLookup for SignatureDictionary {
    fn scheme(&self) -> SchemeId {
        SignatureDictionary::scheme(self)
    }

    fn test_name(&self) -> &str {
        SignatureDictionary::test_name(self)
    }

    fn config(&self) -> MemoryConfig {
        SignatureDictionary::config(self)
    }

    fn content(&self) -> ContentPolicy {
        SignatureDictionary::content(self)
    }

    fn misr_template(&self) -> &Misr {
        self.misr()
    }

    fn reference_trail(&self) -> &SignatureTrail {
        self.fault_free_trail()
    }

    fn find(&self, trail: &SignatureTrail) -> Result<Option<AmbiguityClass>, RepairError> {
        Ok(self.lookup(trail).cloned())
    }

    fn ambiguity_stats(&self) -> AmbiguityStats {
        self.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dictionary::DictionaryOptions;
    use twm_core::scheme::SchemeRegistry;
    use twm_coverage::{CoverageEngine, UniverseBuilder};
    use twm_march::algorithms::march_c_minus;
    use twm_mem::Word;

    fn dictionary(words: usize, width: usize) -> SignatureDictionary {
        let config = MemoryConfig::new(words, width).unwrap();
        let registry = SchemeRegistry::all(width).unwrap();
        let engine = CoverageEngine::for_scheme(
            registry.get(SchemeId::TwmTa).unwrap(),
            &march_c_minus(),
            config,
        )
        .unwrap()
        .content(ContentPolicy::Random { seed: 11 })
        .build()
        .unwrap();
        let universe = UniverseBuilder::new(config).stuck_at().transition().build();
        SignatureDictionary::build(&engine, &universe, &DictionaryOptions::default()).unwrap()
    }

    #[test]
    fn in_ram_backend_mirrors_inherent_api() {
        let dictionary = dictionary(6, 4);
        let lookup: &dyn TrailLookup = &dictionary;
        assert_eq!(lookup.scheme(), SignatureDictionary::scheme(&dictionary));
        assert_eq!(lookup.config(), SignatureDictionary::config(&dictionary));
        assert_eq!(lookup.content(), SignatureDictionary::content(&dictionary));
        assert_eq!(lookup.test_name(), dictionary.test_name());
        assert_eq!(lookup.reference_trail(), dictionary.fault_free_trail());
        assert_eq!(lookup.ambiguity_stats(), dictionary.stats());
        for class in dictionary.classes() {
            assert_eq!(lookup.find(&class.trail).unwrap().as_ref(), Some(class));
        }
        let absent = SignatureTrail::new(vec![Word::ones(4); dictionary.fault_free_trail().len()]);
        if dictionary.lookup(&absent).is_none() {
            assert_eq!(lookup.find(&absent).unwrap(), None);
        }
    }

    #[test]
    fn normalised_lookup_with_reference_expectation_is_plain_lookup() {
        let dictionary = dictionary(6, 4);
        let reference = dictionary.fault_free_trail().clone();
        for class in dictionary.classes() {
            let normalised = dictionary
                .find_normalised(&class.trail, &reference)
                .unwrap();
            assert_eq!(normalised.as_ref(), Some(class));
        }
    }

    #[test]
    fn normalised_lookup_absorbs_a_synthetic_content_shift() {
        // Build a synthetic dictionary where the linearity assumption holds
        // exactly: class keys are reference ⊕ Δ for fixed per-class deltas.
        // Observing key ⊕ reference ⊕ expected under any expected trail
        // must then hit the same class.
        let dictionary = dictionary(6, 4);
        let reference = dictionary.fault_free_trail();
        let shift = SignatureTrail::new(
            (0..reference.len())
                .map(|i| Word::from_bits(u128::from(i as u32 % 13) + 1, 4).unwrap())
                .collect(),
        );
        let expected = reference.xor(&shift).unwrap();
        for class in dictionary.classes().iter().take(16) {
            let observed = class.trail.xor(&shift).unwrap();
            let hit = dictionary.find_normalised(&observed, &expected).unwrap();
            assert_eq!(
                hit.as_ref(),
                Some(class),
                "normalisation must recover the class"
            );
        }
    }

    #[test]
    fn shape_mismatches_are_typed_errors() {
        let dictionary = dictionary(4, 4);
        let short = SignatureTrail::new(vec![Word::zeros(4)]);
        assert!(matches!(
            dictionary.find_normalised(&short, dictionary.fault_free_trail()),
            Err(RepairError::TrailShapeMismatch { .. })
        ));
    }
}
