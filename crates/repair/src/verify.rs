//! Repair verification: prove the signature comes back clean on the
//! remapped memory.

use serde::{Deserialize, Serialize};

use twm_bist::{run_scheme_session, Misr, SessionOutcome};
use twm_core::scheme::SchemeTransform;
use twm_mem::MemoryAccess;

use crate::RepairError;

/// The verdict of re-running a scheme session after a repair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepairVerification {
    /// The post-repair session outcome.
    pub outcome: SessionOutcome,
}

impl RepairVerification {
    /// Whether the repair is proven good: matching signatures, zero exact
    /// mismatches and preserved content.
    #[must_use]
    pub fn clean(&self) -> bool {
        !self.outcome.fault_detected()
            && !self.outcome.fault_detected_exact()
            && self.outcome.content_preserved
    }
}

/// Re-runs a scheme's transparent BIST session on a (repaired) memory —
/// typically a [`twm_mem::RepairableMemory`] with a freshly applied
/// [`crate::RepairPlan`] — and reports whether the session is clean.
///
/// This is the same session the periodic test runs in the field, executed
/// through the remap table, so a clean verification means the deployed
/// test itself can no longer see the defect.
///
/// # Errors
///
/// Returns [`RepairError::Bist`] for session failures (including MISR
/// width mismatches).
pub fn verify_repair<M: MemoryAccess>(
    transform: &SchemeTransform,
    memory: &mut M,
    misr: Misr,
) -> Result<RepairVerification, RepairError> {
    let outcome = run_scheme_session(transform, memory, misr)?;
    Ok(RepairVerification { outcome })
}

#[cfg(test)]
mod tests {
    use super::*;
    use twm_core::scheme::{SchemeId, SchemeRegistry};
    use twm_march::algorithms::march_c_minus;
    use twm_mem::{BitAddress, Fault, MemoryBuilder, RepairableMemory};

    #[test]
    fn repair_flips_a_failing_session_to_clean() {
        let registry = SchemeRegistry::comparison(4).unwrap();
        let transform = registry
            .transform(SchemeId::TwmTa, &march_c_minus())
            .unwrap();
        let faulty = MemoryBuilder::new(8, 4)
            .random_content(5)
            .fault(Fault::stuck_at(BitAddress::new(2, 3), true))
            .build()
            .unwrap();
        let mut memory = RepairableMemory::new(faulty, 1).unwrap();

        let before = verify_repair(&transform, &mut memory, Misr::standard(4)).unwrap();
        assert!(!before.clean());
        assert!(before.outcome.fault_detected_exact());

        memory.map_word(2, 0).unwrap();
        let after = verify_repair(&transform, &mut memory, Misr::standard(4)).unwrap();
        assert!(after.clean());
        assert_eq!(
            after.outcome.predicted_signature,
            after.outcome.test_signature
        );
    }

    #[test]
    fn misr_width_mismatch_is_reported() {
        let registry = SchemeRegistry::comparison(4).unwrap();
        let transform = registry
            .transform(SchemeId::TwmTa, &march_c_minus())
            .unwrap();
        let mut memory =
            RepairableMemory::new(MemoryBuilder::new(4, 4).build().unwrap(), 1).unwrap();
        assert!(matches!(
            verify_repair(&transform, &mut memory, Misr::standard(8)),
            Err(RepairError::Bist(_))
        ));
    }
}
