//! Property tests of the repair subsystem: dictionary-build determinism
//! across thread counts and the diagnose → allocate → remap → verify loop
//! over sampled injections.

use proptest::prelude::*;

use twm_core::scheme::{SchemeId, SchemeRegistry};
use twm_coverage::{ContentPolicy, CoverageEngine, Strategy, UniverseBuilder};
use twm_march::algorithms::march_c_minus;
use twm_mem::{Fault, FaultSet, FaultyMemory, MemoryConfig, RepairableMemory};
use twm_repair::{
    diagnose_and_repair, DiagnosticSession, DictionaryOptions, RepairAllocator, SignatureDictionary,
};

const SEED: u64 = 2025;

/// A second defect appearing after an earlier repair must be handled with
/// the remaining spares: the flow skips the already-repaired word and
/// translates new assignments to the free slots.
#[test]
fn incremental_repair_uses_the_remaining_spares() {
    let config = MemoryConfig::new(6, 8).unwrap();
    let registry = SchemeRegistry::comparison(8).unwrap();
    let session = DiagnosticSession::new(&registry, &march_c_minus()).unwrap();
    let first = Fault::stuck_at(twm_mem::BitAddress::new(1, 4), true);
    let second = Fault::stuck_at(twm_mem::BitAddress::new(4, 2), false);
    let mut base =
        FaultyMemory::with_faults(config, FaultSet::from_faults([first, second])).unwrap();
    base.fill_random(SEED);
    let mut memory = RepairableMemory::new(base, 2).unwrap();
    // The first defect was repaired in an earlier pass (spare 0 in use).
    memory.map_word(1, 0).unwrap();

    let flow = diagnose_and_repair(&session, &RepairAllocator::default(), memory).unwrap();
    // The earlier repair is kept, the new defect takes the free slot.
    assert_eq!(flow.memory.mapped_spare(1), Some(0));
    assert_eq!(flow.memory.mapped_spare(4), Some(1));
    // The already-repaired word needs no (and gets no) new assignment.
    assert!(flow.plan.assignments.iter().all(|a| a.word == 4));
    assert!(flow.verification.clean());
}

/// An empty scheme registry is rejected up front instead of panicking at
/// probe time.
#[test]
fn empty_registry_is_rejected() {
    let registry = SchemeRegistry::empty(8).unwrap();
    assert!(matches!(
        DiagnosticSession::new(&registry, &march_c_minus()),
        Err(twm_repair::RepairError::EmptyRegistry)
    ));
}

/// Sampled multi-fault injections are logically unique: no ambiguity
/// class may contain the same unordered fault pair twice.
#[test]
fn sampled_pairs_are_deduplicated() {
    let config = MemoryConfig::new(4, 4).unwrap();
    let universe = UniverseBuilder::new(config).stuck_at().transition().build();
    let engine = {
        let registry = SchemeRegistry::all(4).unwrap();
        CoverageEngine::for_scheme(
            registry.get(SchemeId::TwmTa).unwrap(),
            &march_c_minus(),
            config,
        )
        .unwrap()
        .content(ContentPolicy::Random { seed: SEED })
        .build()
        .unwrap()
    };
    let dictionary = SignatureDictionary::build(
        &engine,
        &universe,
        &DictionaryOptions {
            multi_fault_samples: 40,
            ..DictionaryOptions::default()
        },
    )
    .unwrap();
    let mut seen: Vec<Vec<Fault>> = Vec::new();
    for injection in dictionary
        .classes()
        .iter()
        .flat_map(|class| &class.injections)
        .chain(dictionary.undetected())
        .filter(|injection| injection.len() == 2)
    {
        let mut normalised = injection.clone();
        normalised.sort_by_key(|fault| format!("{fault:?}"));
        assert!(
            !seen.contains(&normalised),
            "duplicate sampled pair {normalised:?}"
        );
        seen.push(normalised);
    }
    assert!(!seen.is_empty());
}

fn scheme_engine(config: MemoryConfig, strategy: Strategy) -> CoverageEngine {
    let registry = SchemeRegistry::all(config.width()).unwrap();
    CoverageEngine::for_scheme(
        registry.get(SchemeId::TwmTa).unwrap(),
        &march_c_minus(),
        config,
    )
    .unwrap()
    .content(ContentPolicy::Random { seed: SEED })
    .strategy(strategy)
    .build()
    .unwrap()
}

/// The dictionary must be **bit-identical** for any worker-thread count —
/// the build fans injections across the Strategy machinery, but grouping
/// is serial in universe order.
#[test]
fn dictionary_build_is_deterministic_across_thread_counts() {
    let config = MemoryConfig::new(6, 8).unwrap();
    let universe = UniverseBuilder::new(config).stuck_at().transition().build();
    let options = |strategy| DictionaryOptions {
        strategy,
        multi_fault_samples: 24,
        ..DictionaryOptions::default()
    };
    let engine = scheme_engine(config, Strategy::Serial);
    let reference =
        SignatureDictionary::build(&engine, &universe, &options(Strategy::Serial)).unwrap();
    for threads in [2usize, 3, 5] {
        let parallel = SignatureDictionary::build(
            &scheme_engine(config, Strategy::Parallel { threads }),
            &universe,
            &options(Strategy::Parallel { threads }),
        )
        .unwrap();
        assert_eq!(
            parallel, reference,
            "dictionary drifted at {threads} threads"
        );
    }
    // Sanity: the dictionary indexes the overwhelming majority of the
    // SAF+TF universe and discriminates well.
    let stats = reference.stats();
    assert!(stats.indexed > universe.len() / 2);
    assert!(stats.distinguishable_fraction() > 0.5);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sampled two-fault injections: diagnose → allocate → remap → verify
    /// must end with a clean signature whenever the located words fit the
    /// spare budget.
    #[test]
    fn two_fault_injections_repair_clean(
        word_a in 0usize..6,
        bit_a in 0usize..8,
        word_b in 0usize..6,
        bit_b in 0usize..8,
        value_a in any::<bool>(),
        value_b in any::<bool>(),
    ) {
        let config = MemoryConfig::new(6, 8).unwrap();
        let cell_a = twm_mem::BitAddress::new(word_a, bit_a);
        let cell_b = twm_mem::BitAddress::new(word_b, bit_b);
        prop_assume!(cell_a != cell_b);
        let faults = [
            Fault::stuck_at(cell_a, value_a),
            Fault::stuck_at(cell_b, value_b),
        ];

        let registry = SchemeRegistry::comparison(8).unwrap();
        let session = DiagnosticSession::new(&registry, &march_c_minus()).unwrap();
        let mut memory =
            FaultyMemory::with_faults(config, FaultSet::from_faults(faults)).unwrap();
        memory.fill_random(SEED);

        // Two spares always cover the (at most two) defective words.
        let flow = diagnose_and_repair(
            &session,
            &RepairAllocator::default(),
            RepairableMemory::new(memory, 2).unwrap(),
        )
        .unwrap();
        let located = flow.localisation.defective_words();
        prop_assert!(!located.is_empty(), "no word located for {faults:?}");
        for fault in &faults {
            prop_assert!(
                located.contains(&fault.victim().word),
                "missed word of {fault}"
            );
        }
        prop_assert!(flow.plan.fully_repairs());
        prop_assert!(flow.verification.clean(), "signature not clean after repair");
    }

    /// The located defects of a single stuck-at fault survive a
    /// dictionary-assisted session with the *full* scheme registry, and the
    /// repaired memory passes every registered scheme's session.
    #[test]
    fn repaired_memory_is_clean_under_every_scheme(
        word in 0usize..6,
        bit in 0usize..8,
        value in any::<bool>(),
    ) {
        let config = MemoryConfig::new(6, 8).unwrap();
        let fault = Fault::stuck_at(twm_mem::BitAddress::new(word, bit), value);
        let engine = scheme_engine(config, Strategy::Serial);
        let universe = UniverseBuilder::new(config).stuck_at().transition().build();
        let dictionary =
            SignatureDictionary::build(&engine, &universe, &DictionaryOptions::default()).unwrap();
        let registry = SchemeRegistry::all(8).unwrap();
        let session = DiagnosticSession::new(&registry, &march_c_minus())
            .unwrap()
            .with_dictionary(&dictionary)
            .unwrap();

        let mut memory =
            FaultyMemory::with_faults(config, FaultSet::from_faults([fault])).unwrap();
        memory.fill_random(SEED);
        let flow = diagnose_and_repair(
            &session,
            &RepairAllocator::default(),
            RepairableMemory::new(memory, 1).unwrap(),
        )
        .unwrap();
        prop_assert!(flow.localisation.dictionary_hit);
        prop_assert_eq!(flow.localisation.defects[0].cell, fault.victim());
        prop_assert!(flow.verification.clean());

        // Every registered scheme's session is clean on the repaired view.
        let mut repaired = flow.memory;
        for transform in session.transforms() {
            let verdict = twm_repair::verify_repair(
                transform,
                &mut repaired,
                twm_bist::Misr::standard(8),
            )
            .unwrap();
            prop_assert!(verdict.clean(), "{} still failing", transform.scheme());
        }
    }
}
