//! Seeded simulated annealing over the mutation neighbourhood.
//!
//! The chain state is one candidate; each step proposes a small batch of
//! independent neighbours (parallel-trials annealing), scores the batch
//! through the objective's parallel evaluator, and walks the proposals in
//! order, accepting the first one that passes the Metropolis test. All
//! randomness — proposal drawing and acceptance draws — comes from one
//! [`SplitMix64`] consumed on the driving thread, and
//! scores are exact integers, so runs are bit-identical for any thread
//! count.
//!
//! The energy of a candidate is its transparent cost plus a penalty per
//! fault missed below the coverage floor; the returned `best` is the
//! cheapest candidate seen that actually meets the floor (the chain itself
//! may dip below it while exploring).

use std::collections::BTreeMap;

use twm_march::MarchTest;
use twm_mem::SplitMix64;

use crate::seed::seed_state;
use crate::{
    CoverageFloor, MutationModel, Objective, ProvenanceEntry, Score, ScoredTest, SearchError,
    SearchOutcome,
};

/// Options for [`anneal`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnealOptions {
    /// The neighbourhood model (size caps).
    pub model: MutationModel,
    /// PRNG seed driving proposals and acceptance draws.
    pub seed: u64,
    /// Number of annealing steps (≥ 1).
    pub steps: usize,
    /// Independent neighbours proposed per step (≥ 1); the first accepted
    /// proposal moves the chain.
    pub trials_per_step: usize,
    /// Initial Metropolis temperature (> 0).
    pub initial_temperature: f64,
    /// Geometric cooling factor per step (0 < cooling ≤ 1).
    pub cooling: f64,
    /// Energy penalty per fault missed below the coverage floor (≥ 0).
    pub miss_penalty: f64,
    /// Coverage the reported best must keep (default:
    /// [`CoverageFloor::Seed`]).
    pub floor: CoverageFloor,
}

impl Default for AnnealOptions {
    fn default() -> Self {
        Self {
            model: MutationModel::default(),
            seed: 0,
            steps: 200,
            trials_per_step: 4,
            initial_temperature: 8.0,
            cooling: 0.97,
            miss_penalty: 50.0,
            floor: CoverageFloor::Seed,
        }
    }
}

/// A uniform draw in `[0, 1)` from the top 53 bits of the generator.
fn unit(rng: &mut SplitMix64) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Runs seeded simulated annealing minimising the transparent cost under
/// the coverage floor.
///
/// # Errors
///
/// * [`SearchError::InvalidOptions`] for non-positive temperatures, a
///   cooling factor outside `(0, 1]`, a negative miss penalty, or zero
///   steps/trials.
/// * [`SearchError::InfeasibleSeed`] / [`SearchError::Coverage`] as for
///   [`crate::minimise_greedy`].
pub fn anneal(
    objective: &Objective,
    seed: &MarchTest,
    options: &AnnealOptions,
) -> Result<SearchOutcome, SearchError> {
    if options.steps == 0 || options.trials_per_step == 0 {
        return Err(SearchError::InvalidOptions {
            detail: "steps and trials_per_step must be non-zero".to_string(),
        });
    }
    if !options.initial_temperature.is_finite() || options.initial_temperature <= 0.0 {
        return Err(SearchError::InvalidOptions {
            detail: "initial_temperature must be positive".to_string(),
        });
    }
    if options.cooling.is_nan() || options.cooling <= 0.0 || options.cooling > 1.0 {
        return Err(SearchError::InvalidOptions {
            detail: "cooling must lie in (0, 1]".to_string(),
        });
    }
    if options.miss_penalty.is_nan() || options.miss_penalty < 0.0 {
        return Err(SearchError::InvalidOptions {
            detail: "miss_penalty must be non-negative".to_string(),
        });
    }

    let start = seed_state(objective, &options.model, seed, options.floor)?;
    let floor = start.floor;
    let energy = |score: Score| -> f64 {
        let missed = floor.saturating_sub(score.detected);
        score.cost() as f64 + options.miss_penalty * missed as f64
    };

    let mut front = start.front;
    let mut log = start.log;
    let mut evaluated = 1usize;
    // Notation → score memo: Metropolis chains routinely revisit states
    // (a mutation followed by its inverse) and independent draws can
    // propose the same repaired candidate twice — scores are pure, so a
    // candidate only ever pays one engine run.
    let mut memo: BTreeMap<String, Option<Score>> = BTreeMap::new();
    memo.insert(start.test.to_string(), Some(start.score));
    let mut current = start.test.clone();
    let mut current_score = start.score;
    let mut best = ScoredTest {
        test: start.test,
        score: start.score,
    };
    let mut rng = SplitMix64::new(options.seed);
    let mut temperature = options.initial_temperature;

    for step in 1..=options.steps {
        // Draw the whole trial batch on the driving thread before scoring.
        let mut trials = Vec::with_capacity(options.trials_per_step);
        for _ in 0..options.trials_per_step {
            if let Some(proposal) = options.model.propose(&current, &mut rng) {
                trials.push(proposal);
            }
        }
        if !trials.is_empty() {
            let parent = current.to_string();
            let tests: Vec<MarchTest> = trials.iter().map(|(_, test)| test.clone()).collect();
            // Only first occurrences the memo has never seen pay an
            // evaluation; duplicates and revisited states are lookups.
            let mut fresh_indices = Vec::new();
            for (index, test) in tests.iter().enumerate() {
                if let std::collections::btree_map::Entry::Vacant(slot) =
                    memo.entry(test.to_string())
                {
                    slot.insert(None);
                    fresh_indices.push(index);
                }
            }
            let fresh_tests: Vec<MarchTest> = fresh_indices
                .iter()
                .map(|&index| tests[index].clone())
                .collect();
            let fresh_scores = objective.score_batch(&fresh_tests)?;
            evaluated += fresh_tests.len();
            for (&index, score) in fresh_indices.iter().zip(fresh_scores) {
                memo.insert(tests[index].to_string(), score);
            }
            let scores: Vec<Option<Score>> =
                tests.iter().map(|test| memo[&test.to_string()]).collect();
            // Every scored trial reaches the front and the best tracker —
            // including trials after the one the chain accepts below.
            for (index, score) in scores.iter().enumerate() {
                let Some(score) = *score else { continue };
                let candidate = ScoredTest {
                    test: tests[index].clone(),
                    score,
                };
                front.insert(candidate.clone());
                if score.detected >= floor
                    && (score.cost(), score.test_ops) < (best.score.cost(), best.score.test_ops)
                {
                    best = candidate;
                }
            }
            // Metropolis walk in proposal order: the first accepted trial
            // moves the chain.
            for (index, score) in scores.iter().enumerate() {
                let Some(score) = *score else { continue };
                let delta = energy(score) - energy(current_score);
                let accept = delta <= 0.0 || unit(&mut rng) < (-delta / temperature).exp();
                if accept {
                    crate::objective::count_accepted("anneal");
                    current = tests[index].clone();
                    current_score = score;
                    log.push(ProvenanceEntry {
                        step,
                        mutation: Some(trials[index].0),
                        accepted: true,
                        score,
                        notation: current.to_string(),
                        parent: Some(parent),
                    });
                    break;
                }
            }
        }
        temperature *= options.cooling;
    }

    Ok(SearchOutcome {
        best,
        front,
        log,
        evaluated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObjectiveOptions;
    use twm_core::scheme::SchemeRegistry;
    use twm_coverage::UniverseBuilder;
    use twm_march::algorithms::march_c_minus;
    use twm_mem::MemoryConfig;

    fn objective(width: usize) -> Objective {
        let config = MemoryConfig::new(8, width).unwrap();
        let universe = UniverseBuilder::new(config).stuck_at().transition().build();
        Objective::new(
            config,
            universe,
            Some(SchemeRegistry::comparison(width).unwrap()),
            ObjectiveOptions::default(),
        )
        .unwrap()
    }

    fn quick_options(seed: u64) -> AnnealOptions {
        AnnealOptions {
            seed,
            steps: 40,
            ..AnnealOptions::default()
        }
    }

    #[test]
    fn annealing_keeps_the_floor_and_never_worsens_the_best() {
        let objective = objective(4);
        let outcome = anneal(&objective, &march_c_minus(), &quick_options(5)).unwrap();
        assert!(outcome.best.score.full_coverage());
        let seed_score = objective.score(&march_c_minus()).unwrap().unwrap();
        assert!(outcome.best.score.cost() <= seed_score.cost());
        assert!(outcome.evaluated > 1);
    }

    #[test]
    fn annealing_is_deterministic_per_seed() {
        let objective = objective(4);
        let a = anneal(&objective, &march_c_minus(), &quick_options(9)).unwrap();
        let b = anneal(&objective, &march_c_minus(), &quick_options(9)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_options_are_rejected() {
        let objective = objective(4);
        for options in [
            AnnealOptions {
                steps: 0,
                ..AnnealOptions::default()
            },
            AnnealOptions {
                initial_temperature: 0.0,
                ..AnnealOptions::default()
            },
            AnnealOptions {
                cooling: 1.5,
                ..AnnealOptions::default()
            },
            AnnealOptions {
                miss_penalty: -1.0,
                ..AnnealOptions::default()
            },
        ] {
            assert!(matches!(
                anneal(&objective, &march_c_minus(), &options),
                Err(SearchError::InvalidOptions { .. })
            ));
        }
    }
}
