//! Seeded beam search over the mutation neighbourhood.
//!
//! Each generation proposes a fixed number of random mutations per beam
//! member (all randomness from one [`SplitMix64`]
//! drawn on the driving thread), scores the deduplicated proposals as one
//! parallel batch, and keeps the `beam_width` cheapest candidates that meet
//! the coverage floor. Ranking keys are exact integers plus the march
//! notation string, so the beam — and therefore the outcome — is
//! bit-identical for any thread count.

use std::collections::{BTreeMap, BTreeSet};

use twm_march::MarchTest;
use twm_mem::SplitMix64;

use crate::seed::seed_state;
use crate::{
    CoverageFloor, Mutation, MutationModel, Objective, ProvenanceEntry, Score, ScoredTest,
    SearchError, SearchOutcome,
};

/// Options for [`beam_search`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeamOptions {
    /// The neighbourhood model (size caps).
    pub model: MutationModel,
    /// PRNG seed driving all mutation proposals.
    pub seed: u64,
    /// Number of candidates kept per generation (≥ 1).
    pub beam_width: usize,
    /// Number of generations (≥ 1).
    pub generations: usize,
    /// Random proposals drawn per beam member per generation (≥ 1).
    pub proposals_per_member: usize,
    /// Coverage the beam members must keep (default:
    /// [`CoverageFloor::Seed`]).
    pub floor: CoverageFloor,
}

impl Default for BeamOptions {
    fn default() -> Self {
        Self {
            model: MutationModel::default(),
            seed: 0,
            beam_width: 4,
            generations: 8,
            proposals_per_member: 8,
            floor: CoverageFloor::Seed,
        }
    }
}

/// The beam ranking key: cheapest transparent cost first, then fewer
/// operations, then march notation (a total, reproducible order).
fn rank_key(member: &ScoredTest) -> (usize, usize, String) {
    (
        member.score.cost(),
        member.score.test_ops,
        member.test.to_string(),
    )
}

/// Runs a seeded beam search minimising the transparent cost under the
/// coverage floor.
///
/// # Errors
///
/// * [`SearchError::InvalidOptions`] for a zero beam width, generation
///   count or proposal count.
/// * [`SearchError::InfeasibleSeed`] / [`SearchError::Coverage`] as for
///   [`crate::minimise_greedy`].
pub fn beam_search(
    objective: &Objective,
    seed: &MarchTest,
    options: &BeamOptions,
) -> Result<SearchOutcome, SearchError> {
    if options.beam_width == 0 || options.generations == 0 || options.proposals_per_member == 0 {
        return Err(SearchError::InvalidOptions {
            detail: "beam_width, generations and proposals_per_member must be non-zero".to_string(),
        });
    }
    let start = seed_state(objective, &options.model, seed, options.floor)?;
    let mut front = start.front;
    let mut log = start.log;
    let mut evaluated = 1usize;
    // Notation → score memo across generations: a candidate scored once
    // (even if evicted) never pays another engine run when re-proposed.
    let mut memo: BTreeMap<String, Option<Score>> = BTreeMap::new();
    memo.insert(start.test.to_string(), Some(start.score));
    let mut beam = vec![ScoredTest {
        test: start.test,
        score: start.score,
    }];
    let mut rng = SplitMix64::new(options.seed);

    for generation in 1..=options.generations {
        // Propose on the driving thread only, so the PRNG sequence is
        // independent of how the batch is later fanned out.
        let mut seen: BTreeSet<String> =
            beam.iter().map(|member| member.test.to_string()).collect();
        let mut proposals: Vec<(Mutation, MarchTest, String)> = Vec::new();
        for member in &beam {
            let parent = member.test.to_string();
            for _ in 0..options.proposals_per_member {
                if let Some((mutation, candidate)) = options.model.propose(&member.test, &mut rng) {
                    if seen.insert(candidate.to_string()) {
                        proposals.push((mutation, candidate, parent.clone()));
                    }
                }
            }
        }
        if proposals.is_empty() {
            continue;
        }
        let tests: Vec<MarchTest> = proposals.iter().map(|(_, test, _)| test.clone()).collect();
        // Only candidates the memo has never seen pay an evaluation.
        let fresh_indices: Vec<usize> = (0..tests.len())
            .filter(|&index| !memo.contains_key(&tests[index].to_string()))
            .collect();
        let fresh_tests: Vec<MarchTest> = fresh_indices
            .iter()
            .map(|&index| tests[index].clone())
            .collect();
        let fresh_scores = objective.score_batch(&fresh_tests)?;
        evaluated += fresh_tests.len();
        for (&index, score) in fresh_indices.iter().zip(fresh_scores) {
            memo.insert(tests[index].to_string(), score);
        }
        let scores: Vec<Option<Score>> = tests.iter().map(|test| memo[&test.to_string()]).collect();

        let mut pool: Vec<(ScoredTest, Option<(Mutation, String)>)> =
            beam.iter().cloned().map(|member| (member, None)).collect();
        for (index, score) in scores.iter().enumerate() {
            let Some(score) = *score else { continue };
            let candidate = ScoredTest {
                test: tests[index].clone(),
                score,
            };
            front.insert(candidate.clone());
            if score.detected >= start.floor {
                let (mutation, _, parent) = &proposals[index];
                pool.push((candidate, Some((*mutation, parent.clone()))));
            }
        }
        pool.sort_by_key(|(member, _)| rank_key(member));
        pool.truncate(options.beam_width);
        for (member, origin) in &pool {
            if let Some((mutation, parent)) = origin {
                crate::objective::count_accepted("beam");
                log.push(ProvenanceEntry {
                    step: generation,
                    mutation: Some(*mutation),
                    accepted: true,
                    score: member.score,
                    notation: member.test.to_string(),
                    parent: Some(parent.clone()),
                });
            }
        }
        beam = pool.into_iter().map(|(member, _)| member).collect();
    }

    let best = beam.first().cloned().expect("beam is never empty");
    Ok(SearchOutcome {
        best,
        front,
        log,
        evaluated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObjectiveOptions;
    use twm_core::scheme::SchemeRegistry;
    use twm_coverage::UniverseBuilder;
    use twm_march::algorithms::march_c_minus;
    use twm_mem::MemoryConfig;

    fn objective(width: usize) -> Objective {
        let config = MemoryConfig::new(8, width).unwrap();
        let universe = UniverseBuilder::new(config).stuck_at().transition().build();
        Objective::new(
            config,
            universe,
            Some(SchemeRegistry::comparison(width).unwrap()),
            ObjectiveOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn beam_improves_or_preserves_the_seed_under_the_floor() {
        let objective = objective(4);
        let options = BeamOptions {
            seed: 11,
            generations: 4,
            ..BeamOptions::default()
        };
        let outcome = beam_search(&objective, &march_c_minus(), &options).unwrap();
        assert!(outcome.best.score.full_coverage());
        let seed_score = objective.score(&march_c_minus()).unwrap().unwrap();
        assert!(outcome.best.score.cost() <= seed_score.cost());
        assert!(outcome.evaluated > 1);
        assert!(!outcome.front.is_empty());
    }

    #[test]
    fn beam_is_deterministic_per_seed() {
        let objective = objective(4);
        let options = BeamOptions {
            seed: 3,
            generations: 3,
            ..BeamOptions::default()
        };
        let a = beam_search(&objective, &march_c_minus(), &options).unwrap();
        let b = beam_search(&objective, &march_c_minus(), &options).unwrap();
        assert_eq!(a, b);
        let other = BeamOptions { seed: 4, ..options };
        let c = beam_search(&objective, &march_c_minus(), &other).unwrap();
        // Different seeds explore different neighbourhoods (logs differ
        // even when the winner happens to coincide).
        assert_ne!(a.log, c.log);
    }

    #[test]
    fn beam_log_entries_replay_from_their_recorded_parents() {
        let objective = objective(4);
        let options = BeamOptions {
            seed: 11,
            generations: 3,
            ..BeamOptions::default()
        };
        let outcome = beam_search(&objective, &march_c_minus(), &options).unwrap();
        let model = options.model;
        for entry in outcome.log.iter().skip(1) {
            // Candidates are bit-oriented, so the recorded parent notation
            // parses back into the exact test the mutation was applied to.
            let parent = twm_march::notation::parse_march(
                "parent",
                entry
                    .parent
                    .as_deref()
                    .expect("non-seed entries have parents"),
            )
            .unwrap();
            let replayed = model
                .apply(&parent, entry.mutation.unwrap())
                .expect("logged mutations replay cleanly");
            assert_eq!(replayed.to_string(), entry.notation);
        }
    }

    #[test]
    fn zero_options_are_rejected() {
        let objective = objective(4);
        let options = BeamOptions {
            beam_width: 0,
            ..BeamOptions::default()
        };
        assert!(matches!(
            beam_search(&objective, &march_c_minus(), &options),
            Err(SearchError::InvalidOptions { .. })
        ));
    }
}
