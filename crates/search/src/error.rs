use std::error::Error;
use std::fmt;

use twm_coverage::CoverageError;

/// Errors produced by the search subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SearchError {
    /// The caller-supplied fault universe is empty, so candidates cannot be
    /// scored.
    EmptyUniverse,
    /// The scheme registry targets a different word width than the memory
    /// configuration candidates are evaluated against.
    WidthMismatch {
        /// Word width the registry's schemes target.
        registry: usize,
        /// Word width of the memory configuration.
        memory: usize,
    },
    /// The seed test cannot start a search: it is not repairable into a
    /// well-formed bit-oriented candidate, is not transformable by a
    /// registered scheme, or does not meet the requested coverage floor.
    InfeasibleSeed {
        /// Description of the problem.
        detail: String,
    },
    /// A strategy was configured with out-of-range options (for example a
    /// zero beam width or a non-positive temperature).
    InvalidOptions {
        /// Description of the problem.
        detail: String,
    },
    /// An underlying coverage-engine error while scoring a candidate.
    Coverage(CoverageError),
}

impl fmt::Display for SearchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SearchError::EmptyUniverse => {
                write!(f, "fault universe contains no faults to score against")
            }
            SearchError::WidthMismatch { registry, memory } => write!(
                f,
                "scheme registry targets {registry}-bit words but the memory has {memory}-bit words"
            ),
            SearchError::InfeasibleSeed { detail } => {
                write!(f, "seed test cannot start the search: {detail}")
            }
            SearchError::InvalidOptions { detail } => {
                write!(f, "invalid search options: {detail}")
            }
            SearchError::Coverage(err) => write!(f, "coverage error: {err}"),
        }
    }
}

impl Error for SearchError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SearchError::Coverage(err) => Some(err),
            _ => None,
        }
    }
}

impl From<CoverageError> for SearchError {
    fn from(err: CoverageError) -> Self {
        SearchError::Coverage(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let err: SearchError = CoverageError::EmptyUniverse.into();
        assert!(err.source().is_some());
        assert!(err.to_string().contains("coverage error"));
        assert!(!SearchError::EmptyUniverse.to_string().is_empty());
        let err = SearchError::WidthMismatch {
            registry: 8,
            memory: 4,
        };
        assert!(err.to_string().contains("8-bit"));
    }

    #[test]
    fn error_is_well_behaved() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<SearchError>();
    }
}
