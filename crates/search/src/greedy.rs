//! Greedy drop-one-operation minimisation with coverage-preserving
//! acceptance.
//!
//! Each round enumerates every drop-one-op neighbour of the current test
//! ([`MutationModel::deletions`]), scores the whole batch through the
//! objective's parallel batch evaluator, and accepts the cheapest feasible
//! neighbour that still meets the coverage floor (ties broken by fewer
//! operations, then lowest deletion index — fully deterministic, no
//! randomness at all). The search stops when no deletion is acceptable;
//! since every accepted step removes one operation, it always terminates.

use twm_march::MarchTest;

use crate::seed::seed_state;
use crate::{
    CoverageFloor, MutationModel, Objective, ProvenanceEntry, ScoredTest, SearchError,
    SearchOutcome,
};

/// Options for [`minimise_greedy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GreedyOptions {
    /// The neighbourhood model (size caps).
    pub model: MutationModel,
    /// Coverage the minimised test must keep (default:
    /// [`CoverageFloor::Seed`]).
    pub floor: CoverageFloor,
}

impl Default for GreedyOptions {
    fn default() -> Self {
        Self {
            model: MutationModel::default(),
            floor: CoverageFloor::Seed,
        }
    }
}

/// Minimises `seed` by greedy coverage-preserving deletion.
///
/// # Errors
///
/// * [`SearchError::InfeasibleSeed`] if the seed is not repairable, not
///   transformable, or below the requested floor.
/// * [`SearchError::Coverage`] for engine failures while scoring.
pub fn minimise_greedy(
    objective: &Objective,
    seed: &MarchTest,
    options: &GreedyOptions,
) -> Result<SearchOutcome, SearchError> {
    let start = seed_state(objective, &options.model, seed, options.floor)?;
    let mut current = start.test;
    let mut current_score = start.score;
    let mut front = start.front;
    let mut log = start.log;
    let mut evaluated = 1usize;

    for step in 1.. {
        let candidates = options.model.deletions(&current);
        if candidates.is_empty() {
            break;
        }
        let tests: Vec<MarchTest> = candidates.iter().map(|(_, test)| test.clone()).collect();
        let scores = objective.score_batch(&tests)?;
        evaluated += tests.len();

        let mut chosen: Option<usize> = None;
        for (index, score) in scores.iter().enumerate() {
            let Some(score) = *score else { continue };
            front.insert(ScoredTest {
                test: tests[index].clone(),
                score,
            });
            if score.detected < start.floor {
                continue;
            }
            let better = match chosen {
                None => true,
                Some(best) => {
                    let best = scores[best].expect("chosen candidates are feasible");
                    (score.cost(), score.test_ops) < (best.cost(), best.test_ops)
                }
            };
            if better {
                chosen = Some(index);
            }
        }
        let Some(index) = chosen else { break };
        crate::objective::count_accepted("greedy");
        let parent = current.to_string();
        current = tests[index].clone();
        current_score = scores[index].expect("chosen candidates are feasible");
        log.push(ProvenanceEntry {
            step,
            mutation: Some(candidates[index].0),
            accepted: true,
            score: current_score,
            notation: current.to_string(),
            parent: Some(parent),
        });
    }

    Ok(SearchOutcome {
        best: ScoredTest {
            test: current,
            score: current_score,
        },
        front,
        log,
        evaluated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObjectiveOptions;
    use twm_core::scheme::SchemeRegistry;
    use twm_coverage::UniverseBuilder;
    use twm_march::algorithms::{march_c_minus, mats_plus_plus};
    use twm_mem::MemoryConfig;

    fn objective(width: usize) -> Objective {
        let config = MemoryConfig::new(8, width).unwrap();
        let universe = UniverseBuilder::new(config).stuck_at().transition().build();
        Objective::new(
            config,
            universe,
            Some(SchemeRegistry::comparison(width).unwrap()),
            ObjectiveOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn march_c_minus_shrinks_without_losing_saf_tf_coverage() {
        let objective = objective(4);
        let outcome =
            minimise_greedy(&objective, &march_c_minus(), &GreedyOptions::default()).unwrap();
        assert!(outcome.best.score.full_coverage());
        assert!(
            outcome.best.score.test_ops < march_c_minus().length().operations,
            "expected a strict reduction, got {}",
            outcome.best.test
        );
        // Provenance: seed entry plus one entry per removed operation.
        assert_eq!(
            outcome.log.len(),
            1 + (march_c_minus().length().operations - outcome.best.score.test_ops)
        );
        assert!(outcome.log.iter().all(|entry| entry.accepted));
        assert!(outcome.evaluated > outcome.log.len());
        // The front contains the winner's (coverage, cost) point.
        assert!(outcome
            .front
            .points()
            .iter()
            .any(|p| p.score == outcome.best.score));
    }

    #[test]
    fn greedy_is_deterministic() {
        let objective = objective(4);
        let a = minimise_greedy(&objective, &march_c_minus(), &GreedyOptions::default()).unwrap();
        let b = minimise_greedy(&objective, &march_c_minus(), &GreedyOptions::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn already_minimal_tests_survive_unchanged() {
        let objective = objective(4);
        // MATS++ is already near-minimal for SAF+TF; whatever the outcome,
        // coverage must hold and the result be no longer than the seed.
        let outcome =
            minimise_greedy(&objective, &mats_plus_plus(), &GreedyOptions::default()).unwrap();
        assert!(outcome.best.score.full_coverage());
        assert!(outcome.best.score.test_ops <= mats_plus_plus().length().operations);
    }

    #[test]
    fn infeasible_floor_is_rejected() {
        let objective = objective(4);
        let options = GreedyOptions {
            floor: CoverageFloor::Detected(usize::MAX),
            ..GreedyOptions::default()
        };
        assert!(matches!(
            minimise_greedy(&objective, &march_c_minus(), &options),
            Err(SearchError::InfeasibleSeed { .. })
        ));
    }
}
