//! # twm-search — march-test generation & minimisation search
//!
//! The DATE 2005 paper's transparent-BIST schemes all start from a *given*
//! bit-oriented march test; this crate searches for **better** ones —
//! shorter tests with equal fault coverage, scored by the *transparent*
//! session cost the schemes would actually pay. It is the workload the fast
//! coverage kernel was built for: every candidate evaluation is one
//! [`twm_coverage::CoverageEngine`] run over a caller-supplied fault
//! universe, and the [`twm_core::SchemeRegistry`] prices each candidate
//! across every registered scheme in one sweep.
//!
//! * [`mutate`] — the seeded mutation/neighbourhood model on
//!   [`twm_march::MarchTest`] (insert/delete/replace operations, address-
//!   order flips, element split/merge, data-pattern swaps) with
//!   well-formedness repair, so every candidate stays a consistent
//!   bit-oriented march test the schemes can transform.
//! * [`objective`] — the [`Score`]` { detected, total_faults, test_ops,
//!   scheme_cost }` objective: coverage from one engine run (sharing the
//!   template engine's prepared contents via
//!   [`twm_coverage::CoverageEngine::with_test`]), transparent cost from
//!   the registry. [`Objective::score_batch`] fans candidates across the
//!   worker threads of a [`twm_coverage::Strategy`].
//! * [`greedy`] / [`beam`] / [`anneal`](mod@anneal) — the strategies: greedy
//!   drop-one-op minimisation with coverage-preserving acceptance, seeded
//!   beam search, and seeded parallel-trials simulated annealing. All
//!   return a [`SearchOutcome`]: the winner, a (coverage, cost)
//!   [`ParetoFront`], and a full provenance log of accepted [`Mutation`]s.
//!
//! **Determinism:** every strategy is a pure function of (objective, seed
//! test, options). Randomness flows through one seeded
//! [`twm_mem::SplitMix64`] on the driving thread, candidates are scored
//! independently and merged in order, and scores hold only integers — so
//! the outcome is bit-identical for [`twm_coverage::Strategy::Serial`] and
//! any `Parallel { threads }` (property-tested in `tests/determinism.rs`).
//!
//! ```
//! use twm_core::scheme::SchemeRegistry;
//! use twm_coverage::UniverseBuilder;
//! use twm_march::algorithms::march_c_minus;
//! use twm_mem::MemoryConfig;
//! use twm_search::{minimise_greedy, GreedyOptions, Objective, ObjectiveOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = MemoryConfig::new(8, 4)?;
//! let universe = UniverseBuilder::new(config).stuck_at().transition().build();
//! let objective = Objective::new(
//!     config,
//!     universe,
//!     Some(SchemeRegistry::comparison(4)?),
//!     ObjectiveOptions::default(),
//! )?;
//! let outcome = minimise_greedy(&objective, &march_c_minus(), &GreedyOptions::default())?;
//! // Strictly shorter than March C-'s 10 ops, still 100% SAF+TF coverage.
//! assert!(outcome.best.score.test_ops < 10);
//! assert!(outcome.best.score.full_coverage());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod anneal;
pub mod beam;
mod error;
pub mod greedy;
pub mod mutate;
pub mod objective;
mod outcome;
mod pareto;
mod seed;

pub use anneal::{anneal, AnnealOptions};
pub use beam::{beam_search, BeamOptions};
pub use error::SearchError;
pub use greedy::{minimise_greedy, GreedyOptions};
pub use mutate::{Mutation, MutationModel};
pub use objective::{CoverageFloor, Objective, ObjectiveOptions, Score, ScoredTest};
pub use outcome::{ProvenanceEntry, SearchOutcome};
pub use pareto::ParetoFront;
