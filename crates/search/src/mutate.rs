//! The mutation/neighbourhood model on [`MarchTest`] candidates.
//!
//! Candidates are **bit-oriented** march tests (the input language of every
//! [`twm_core::TransparentScheme`]). A [`Mutation`] is one atomic edit —
//! insert/delete/replace an operation, flip an element's address order,
//! split or merge elements, or swap an operation's data pattern — and
//! [`MutationModel::apply`] always follows the raw edit with a
//! **well-formedness repair**:
//!
//! * empty elements are dropped (and an empty test is rejected);
//! * size caps ([`MutationModel::max_elements`],
//!   [`MutationModel::max_ops_per_element`]) bound the neighbourhood;
//! * every read's expected data is rewritten to the value tracked through
//!   the candidate's own writes (a word not yet written reads the all-zero
//!   initial content, matching [`twm_coverage::ContentPolicy::Zeros`]), so
//!   a repaired candidate never fails on a fault-free memory and stays
//!   transformable by the scheme registry.
//!
//! All randomness flows through a caller-seeded [`SplitMix64`], so the
//! neighbourhood is deterministic: same seed, same proposals.

use std::fmt;

use serde::{Deserialize, Serialize};

use twm_march::{AddressOrder, DataPattern, DataSpec, MarchElement, MarchTest, OpKind, Operation};
use twm_mem::SplitMix64;

/// One atomic edit of a march-test candidate.
///
/// Indices refer to the candidate the mutation is applied to; the repair
/// step may renumber elements afterwards (for example when a deletion
/// empties an element).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mutation {
    /// Insert a bit-oriented operation at `position` of `element`.
    InsertOp {
        /// Element index.
        element: usize,
        /// Insertion position within the element's operations.
        position: usize,
        /// Whether the inserted operation is a read (else a write).
        read: bool,
        /// Whether its data pattern is all-one (else all-zero).
        one: bool,
    },
    /// Delete the operation at `position` of `element`.
    DeleteOp {
        /// Element index.
        element: usize,
        /// Operation index within the element.
        position: usize,
    },
    /// Flip the operation at `position` of `element` between read and write.
    ReplaceKind {
        /// Element index.
        element: usize,
        /// Operation index within the element.
        position: usize,
    },
    /// Swap the data pattern of the operation at `position` of `element`
    /// (all-zero ↔ all-one).
    FlipData {
        /// Element index.
        element: usize,
        /// Operation index within the element.
        position: usize,
    },
    /// Cycle the address order of `element` (⇑ → ⇓ → ⇕ → ⇑).
    FlipOrder {
        /// Element index.
        element: usize,
    },
    /// Split `element` into two elements of the same order, the second
    /// starting at operation `at`.
    SplitElement {
        /// Element index.
        element: usize,
        /// First operation of the new second element (`0 < at < len`).
        at: usize,
    },
    /// Merge `element + 1` into `element`, keeping the first element's
    /// address order.
    MergeElements {
        /// Index of the first of the two merged elements.
        element: usize,
    },
}

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Mutation::InsertOp {
                element,
                position,
                read,
                one,
            } => {
                let kind = if read { 'r' } else { 'w' };
                let data = usize::from(one);
                write!(f, "insert {kind}{data} at {element}.{position}")
            }
            Mutation::DeleteOp { element, position } => {
                write!(f, "delete op {element}.{position}")
            }
            Mutation::ReplaceKind { element, position } => {
                write!(f, "flip read/write at {element}.{position}")
            }
            Mutation::FlipData { element, position } => {
                write!(f, "flip data at {element}.{position}")
            }
            Mutation::FlipOrder { element } => write!(f, "flip order of element {element}"),
            Mutation::SplitElement { element, at } => {
                write!(f, "split element {element} at {at}")
            }
            Mutation::MergeElements { element } => {
                write!(f, "merge elements {element} and {}", element + 1)
            }
        }
    }
}

/// Builds the bit-oriented operation a [`Mutation::InsertOp`] denotes.
fn bit_op(read: bool, one: bool) -> Operation {
    let pattern = if one {
        DataPattern::Ones
    } else {
        DataPattern::Zeros
    };
    if read {
        Operation::read(DataSpec::Literal(pattern))
    } else {
        Operation::write(DataSpec::Literal(pattern))
    }
}

/// The next address order in the ⇑ → ⇓ → ⇕ cycle.
fn next_order(order: AddressOrder) -> AddressOrder {
    match order {
        AddressOrder::Ascending => AddressOrder::Descending,
        AddressOrder::Descending => AddressOrder::Any,
        AddressOrder::Any => AddressOrder::Ascending,
    }
}

/// The neighbourhood model: which candidates are one mutation away from a
/// test, under the model's size caps and repair rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MutationModel {
    /// Maximum number of march elements a candidate may have.
    pub max_elements: usize,
    /// Maximum number of operations per march element.
    pub max_ops_per_element: usize,
}

impl Default for MutationModel {
    fn default() -> Self {
        // Generous enough for every library test (March SS has 6 elements
        // of up to 5 operations) plus room to grow during exploration.
        Self {
            max_elements: 12,
            max_ops_per_element: 8,
        }
    }
}

/// Attempts per [`MutationModel::propose`] call before giving up.
const PROPOSE_ATTEMPTS: usize = 16;

impl MutationModel {
    /// Repairs raw elements into a well-formed bit-oriented candidate:
    /// drops empty elements, enforces the size caps, and rewrites every
    /// read's expected data to the value tracked through the candidate's
    /// own writes (an unwritten word reads the all-zero initial content).
    ///
    /// Returns `None` when no well-formed candidate exists (an empty test,
    /// a capsize violation, or a non-bit-oriented operation).
    #[must_use]
    pub fn repair(&self, name: &str, elements: Vec<MarchElement>) -> Option<MarchTest> {
        let mut kept: Vec<MarchElement> = elements
            .into_iter()
            .filter(|element| !element.is_empty())
            .collect();
        if kept.is_empty()
            || kept.len() > self.max_elements
            || kept
                .iter()
                .any(|element| element.len() > self.max_ops_per_element)
        {
            return None;
        }
        // Every address experiences the same operation sequence, so one
        // scalar tracks the value a word holds at each point of the test.
        let mut state: Option<bool> = None;
        for element in &mut kept {
            for op in &mut element.ops {
                let one = match op.data {
                    DataSpec::Literal(DataPattern::Ones) => true,
                    DataSpec::Literal(DataPattern::Zeros) => false,
                    // The model speaks bit-oriented tests only.
                    _ => return None,
                };
                match op.kind {
                    OpKind::Write => state = Some(one),
                    OpKind::Read => {
                        let expected = state.unwrap_or(false);
                        if expected != one {
                            *op = bit_op(true, expected);
                        }
                        state = Some(expected);
                    }
                }
            }
        }
        MarchTest::new(name, kept).ok()
    }

    /// Applies one mutation and repairs the result. Returns `None` when the
    /// mutation's indices do not fit the test or the repair fails.
    #[must_use]
    pub fn apply(&self, test: &MarchTest, mutation: Mutation) -> Option<MarchTest> {
        let mut elements: Vec<MarchElement> = test.elements().to_vec();
        match mutation {
            Mutation::InsertOp {
                element,
                position,
                read,
                one,
            } => {
                let target = elements.get_mut(element)?;
                if position > target.len() {
                    return None;
                }
                target.ops.insert(position, bit_op(read, one));
            }
            Mutation::DeleteOp { element, position } => {
                let target = elements.get_mut(element)?;
                if position >= target.len() {
                    return None;
                }
                target.ops.remove(position);
            }
            Mutation::ReplaceKind { element, position } => {
                let op = elements.get_mut(element)?.ops.get_mut(position)?;
                op.kind = match op.kind {
                    OpKind::Read => OpKind::Write,
                    OpKind::Write => OpKind::Read,
                };
            }
            Mutation::FlipData { element, position } => {
                let op = elements.get_mut(element)?.ops.get_mut(position)?;
                op.data = op.data.complemented()?;
            }
            Mutation::FlipOrder { element } => {
                let target = elements.get_mut(element)?;
                target.order = next_order(target.order);
            }
            Mutation::SplitElement { element, at } => {
                let target = elements.get_mut(element)?;
                if at == 0 || at >= target.len() {
                    return None;
                }
                let tail = target.ops.split_off(at);
                let order = target.order;
                elements.insert(element + 1, MarchElement::new(order, tail));
            }
            Mutation::MergeElements { element } => {
                if element + 1 >= elements.len() {
                    return None;
                }
                let tail = elements.remove(element + 1);
                elements[element].ops.extend(tail.ops);
            }
        }
        self.repair(test.name(), elements)
    }

    /// Proposes one random mutation of `test`, drawing from `rng`: up to a
    /// fixed number of attempts are made, and a proposal is returned only
    /// when the repaired candidate differs from `test` (a repair can undo
    /// an edit, for example re-flipping a read's data).
    #[must_use]
    pub fn propose(&self, test: &MarchTest, rng: &mut SplitMix64) -> Option<(Mutation, MarchTest)> {
        for _ in 0..PROPOSE_ATTEMPTS {
            let mutation = self.random_mutation(test, rng);
            if let Some(candidate) = self.apply(test, mutation) {
                if candidate != *test {
                    return Some((mutation, candidate));
                }
            }
        }
        None
    }

    /// Every drop-one-operation candidate of `test`, in (element, position)
    /// order — the greedy minimisation neighbourhood.
    #[must_use]
    pub fn deletions(&self, test: &MarchTest) -> Vec<(Mutation, MarchTest)> {
        let mut candidates = Vec::new();
        for (element, member) in test.elements().iter().enumerate() {
            for position in 0..member.len() {
                let mutation = Mutation::DeleteOp { element, position };
                if let Some(candidate) = self.apply(test, mutation) {
                    candidates.push((mutation, candidate));
                }
            }
        }
        candidates
    }

    /// Draws a random (not yet repaired) mutation of `test`.
    fn random_mutation(&self, test: &MarchTest, rng: &mut SplitMix64) -> Mutation {
        let element = rng.next_below(test.element_count());
        let ops = test.elements()[element].len();
        match rng.next_below(7) {
            0 => Mutation::InsertOp {
                element,
                position: rng.next_below(ops + 1),
                read: rng.next_bool(),
                one: rng.next_bool(),
            },
            1 => Mutation::DeleteOp {
                element,
                position: rng.next_below(ops),
            },
            2 => Mutation::ReplaceKind {
                element,
                position: rng.next_below(ops),
            },
            3 => Mutation::FlipData {
                element,
                position: rng.next_below(ops),
            },
            4 => Mutation::FlipOrder { element },
            5 => Mutation::SplitElement {
                element,
                // `at == 0` is rejected by `apply`, which makes the next
                // attempt draw a fresh mutation.
                at: if ops > 1 {
                    1 + rng.next_below(ops - 1)
                } else {
                    0
                },
            },
            _ => Mutation::MergeElements { element },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twm_core::nicolaidis::track_states;
    use twm_march::algorithms::{march_c_minus, march_ss};

    #[test]
    fn repair_drops_empty_elements_and_rewrites_reads() {
        let model = MutationModel::default();
        let elements = vec![
            MarchElement::any_order(vec![Operation::w0()]),
            MarchElement::ascending(vec![]),
            // This read expects 1 but the tracked value is 0: repaired.
            MarchElement::ascending(vec![Operation::r1(), Operation::w1()]),
        ];
        let repaired = model.repair("x", elements).unwrap();
        assert_eq!(repaired.to_string(), "⇕(w0); ⇑(r0,w1)");
        assert!(track_states(&repaired).is_ok());
    }

    #[test]
    fn repair_rejects_empty_and_oversized_tests() {
        let model = MutationModel {
            max_elements: 2,
            max_ops_per_element: 2,
        };
        assert!(model.repair("x", vec![]).is_none());
        assert!(model
            .repair("x", vec![MarchElement::ascending(vec![])])
            .is_none());
        let too_many = vec![MarchElement::any_order(vec![Operation::w0()]); 3];
        assert!(model.repair("x", too_many).is_none());
        let too_long = vec![MarchElement::any_order(vec![Operation::w0(); 3])];
        assert!(model.repair("x", too_long).is_none());
        // Non-bit-oriented candidates are outside the model's language.
        let transparent = vec![MarchElement::any_order(vec![Operation::read_content()])];
        assert!(model.repair("x", transparent).is_none());
    }

    #[test]
    fn leading_read_assumes_the_all_zero_initial_content() {
        let model = MutationModel::default();
        let repaired = model
            .repair(
                "x",
                vec![MarchElement::ascending(vec![
                    Operation::r1(),
                    Operation::w1(),
                ])],
            )
            .unwrap();
        assert_eq!(repaired.to_string(), "⇑(r0,w1)");
    }

    #[test]
    fn apply_covers_every_mutation_kind() {
        let model = MutationModel::default();
        let test = march_c_minus();
        let inserted = model
            .apply(
                &test,
                Mutation::InsertOp {
                    element: 1,
                    position: 2,
                    read: true,
                    one: true,
                },
            )
            .unwrap();
        assert_eq!(inserted.length().operations, 11);

        let deleted = model
            .apply(
                &test,
                Mutation::DeleteOp {
                    element: 1,
                    position: 0,
                },
            )
            .unwrap();
        assert_eq!(deleted.length().operations, 9);

        let flipped = model
            .apply(&test, Mutation::FlipOrder { element: 1 })
            .unwrap();
        assert_eq!(flipped.elements()[1].order, AddressOrder::Descending);

        let split = model
            .apply(&test, Mutation::SplitElement { element: 1, at: 1 })
            .unwrap();
        assert_eq!(split.element_count(), 7);

        let merged = model
            .apply(&test, Mutation::MergeElements { element: 1 })
            .unwrap();
        assert_eq!(merged.element_count(), 5);
        assert_eq!(merged.length().operations, 10);

        // Out-of-range indices are rejected, not panicked on.
        assert!(model
            .apply(
                &test,
                Mutation::DeleteOp {
                    element: 99,
                    position: 0
                }
            )
            .is_none());
        assert!(model
            .apply(&test, Mutation::SplitElement { element: 0, at: 0 })
            .is_none());
        assert!(model
            .apply(&test, Mutation::MergeElements { element: 5 })
            .is_none());
    }

    #[test]
    fn applied_mutations_always_yield_consistent_tests() {
        let model = MutationModel::default();
        let test = march_ss();
        let mut rng = SplitMix64::new(42);
        let mut produced = 0;
        for _ in 0..200 {
            if let Some((_, candidate)) = model.propose(&test, &mut rng) {
                produced += 1;
                assert!(candidate.is_bit_oriented());
                assert!(track_states(&candidate).is_ok(), "{candidate}");
                assert!(candidate.element_count() <= model.max_elements);
                assert!(candidate
                    .elements()
                    .iter()
                    .all(|e| e.len() <= model.max_ops_per_element));
            }
        }
        assert!(produced > 150, "proposals should rarely fail: {produced}");
    }

    #[test]
    fn proposals_are_deterministic_per_seed() {
        let model = MutationModel::default();
        let test = march_c_minus();
        let run = |seed: u64| {
            let mut rng = SplitMix64::new(seed);
            (0..32)
                .filter_map(|_| model.propose(&test, &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn deletions_enumerate_every_operation() {
        let model = MutationModel::default();
        let test = march_c_minus();
        let deletions = model.deletions(&test);
        assert_eq!(deletions.len(), test.length().operations);
        for (_, candidate) in &deletions {
            assert!(candidate.length().operations < test.length().operations);
            assert!(track_states(candidate).is_ok());
        }
    }

    #[test]
    fn mutation_display_is_readable() {
        assert_eq!(
            Mutation::DeleteOp {
                element: 1,
                position: 0
            }
            .to_string(),
            "delete op 1.0"
        );
        assert_eq!(
            Mutation::InsertOp {
                element: 0,
                position: 2,
                read: true,
                one: false
            }
            .to_string(),
            "insert r0 at 0.2"
        );
        assert_eq!(
            Mutation::MergeElements { element: 3 }.to_string(),
            "merge elements 3 and 4"
        );
    }
}
