//! Candidate scoring: coverage over a caller-supplied fault universe plus
//! the registry-driven *transparent* session cost.
//!
//! The [`Objective`] owns everything a scoring call can amortise: one
//! template [`CoverageEngine`] whose pre-generated initial contents are
//! shared (`Arc`) with every per-candidate sibling engine
//! ([`CoverageEngine::with_test`] — only the candidate's lowering is paid
//! per score), the fault universe, and the optional
//! [`SchemeRegistry`] the transparent cost is computed against.
//!
//! [`Objective::score_batch`] fans a batch of candidates across the worker
//! threads of the configured [`Strategy`]; every candidate is scored
//! independently on a serial engine and the results are merged back in
//! candidate order, so batches are **bit-identical for any thread count**
//! (property-tested in `tests/determinism.rs`).

use std::sync::OnceLock;

use serde::{Deserialize, Serialize};

use twm_core::scheme::SchemeRegistry;
use twm_coverage::{ContentPolicy, CoverageEngine, EvaluationOptions, Strategy};
use twm_march::{MarchElement, MarchTest, Operation};
use twm_mem::{Fault, MemoryConfig};

use crate::SearchError;

/// Process-wide scoring counters in the [`twm_obs::global`] registry.
/// With the per-strategy `twm_search_accepted_total` counters the
/// strategies bump, `accepted / scored` is the search acceptance rate.
struct SearchObs {
    scored: twm_obs::Counter,
    infeasible: twm_obs::Counter,
}

fn search_obs() -> &'static SearchObs {
    static OBS: OnceLock<SearchObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let registry = twm_obs::global();
        SearchObs {
            scored: registry.counter("twm_search_candidates_scored_total", &[]),
            infeasible: registry.counter("twm_search_infeasible_candidates_total", &[]),
        }
    })
}

/// Counts one accepted candidate for `strategy` — called by the search
/// strategies at the moments they log an accepted provenance entry.
pub(crate) fn count_accepted(strategy: &'static str) {
    twm_obs::global()
        .counter("twm_search_accepted_total", &[("strategy", strategy)])
        .incr();
}

/// The objective value of one candidate.
///
/// Ordering intent: maximise `detected` (coverage), then minimise
/// [`Score::cost`] and `test_ops`. Only integers are stored, so scores
/// compare exactly and provenance logs are reproducible bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Score {
    /// Faults of the universe the candidate detects.
    pub detected: usize,
    /// Size of the evaluated universe.
    pub total_faults: usize,
    /// Operations per word of the (bit-oriented) candidate itself.
    pub test_ops: usize,
    /// Transparent session cost per word: the sum of
    /// `exact_complexity().total()` (transparent test + prediction phase)
    /// over every scheme of the objective's registry — the cost the search
    /// actually optimises. Falls back to `test_ops` when the objective has
    /// no registry.
    pub scheme_cost: usize,
}

impl Score {
    /// Detected fraction of the universe.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.total_faults == 0 {
            1.0
        } else {
            self.detected as f64 / self.total_faults as f64
        }
    }

    /// Whether every fault of the universe is detected.
    #[must_use]
    pub fn full_coverage(&self) -> bool {
        self.detected == self.total_faults
    }

    /// The minimised cost: the transparent session cost per word.
    #[must_use]
    pub fn cost(&self) -> usize {
        self.scheme_cost
    }
}

/// A candidate together with its score.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScoredTest {
    /// The candidate march test.
    pub test: MarchTest,
    /// Its objective value.
    pub score: Score,
}

/// The coverage a candidate must keep to be accepted by a strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoverageFloor {
    /// Keep at least the seed test's detected-fault count.
    Seed,
    /// Detect every fault of the universe.
    Full,
    /// Detect at least this many faults.
    Detected(usize),
}

impl CoverageFloor {
    /// Resolves the floor to a detected-fault count for a given seed score.
    #[must_use]
    pub fn resolve(self, seed: &Score) -> usize {
        match self {
            CoverageFloor::Seed => seed.detected,
            CoverageFloor::Full => seed.total_faults,
            CoverageFloor::Detected(count) => count,
        }
    }
}

/// Options for building an [`Objective`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectiveOptions {
    /// Content policy and contents-per-fault of every candidate engine.
    /// Must use [`ContentPolicy::Zeros`] (the default): candidates are
    /// ordinary (non-transparent) bit-oriented tests, and the mutation
    /// model's repair rewrites reads assuming an all-zero initial content —
    /// under random content a repaired candidate with a leading read would
    /// mismatch on a *fault-free* memory, marking every fault detected and
    /// guttering the search. [`Objective::new`] rejects
    /// [`ContentPolicy::Random`] with [`SearchError::InvalidOptions`].
    pub evaluation: EvaluationOptions,
    /// Execution strategy, used in two places: [`Objective::score_batch`]
    /// fans candidates across the resolved worker count (serial engine per
    /// candidate), and single-candidate [`Objective::score`] calls hand the
    /// whole strategy to one engine, whose streaming windows parallelise
    /// the universe instead. Engine reports are bit-identical for any
    /// thread count, so every strategy produces identical results.
    pub strategy: Strategy,
}

impl Default for ObjectiveOptions {
    fn default() -> Self {
        Self {
            evaluation: EvaluationOptions {
                content: ContentPolicy::Zeros,
                contents_per_fault: 1,
            },
            strategy: Strategy::default(),
        }
    }
}

/// The candidate-scoring oracle shared by every search strategy.
#[derive(Debug)]
pub struct Objective {
    universe: Vec<Fault>,
    registry: Option<SchemeRegistry>,
    /// Serial-engine template: `with_test` siblings of this one score
    /// batch candidates (the batch itself fans across threads).
    template: CoverageEngine,
    /// Parallel-engine template for single-candidate scores, present when
    /// the strategy resolves to more than one worker — there the engine's
    /// own streaming windows (and its cheap-first scheduling) provide the
    /// parallelism instead of the batch.
    wide_template: Option<CoverageEngine>,
    threads: usize,
}

impl Objective {
    /// Builds an objective for one memory shape and fault universe.
    ///
    /// `registry` supplies the transparent-cost model ([`Score::scheme_cost`]
    /// sums the exact session cost over its schemes); pass `None` to
    /// optimise the raw candidate length instead.
    ///
    /// # Errors
    ///
    /// * [`SearchError::EmptyUniverse`] for an empty universe.
    /// * [`SearchError::WidthMismatch`] if the registry targets a different
    ///   word width than `config`.
    /// * [`SearchError::InvalidOptions`] for a [`ContentPolicy::Random`]
    ///   evaluation policy (see [`ObjectiveOptions::evaluation`]).
    /// * [`SearchError::Coverage`] if the template engine cannot be built
    ///   (for example [`Strategy::Parallel`]` { threads: 0 }`).
    pub fn new(
        config: MemoryConfig,
        universe: Vec<Fault>,
        registry: Option<SchemeRegistry>,
        options: ObjectiveOptions,
    ) -> Result<Self, SearchError> {
        if universe.is_empty() {
            return Err(SearchError::EmptyUniverse);
        }
        if matches!(options.evaluation.content, ContentPolicy::Random { .. }) {
            return Err(SearchError::InvalidOptions {
                detail: "candidate scoring requires ContentPolicy::Zeros: the mutation \
                         model repairs reads against an all-zero initial content, so \
                         random contents would flag fault-free mismatches as detections"
                    .to_string(),
            });
        }
        if let Some(registry) = &registry {
            if registry.width() != config.width() {
                return Err(SearchError::WidthMismatch {
                    registry: registry.width(),
                    memory: config.width(),
                });
            }
        }
        let threads = options.strategy.worker_threads()?;
        // The template's own test is never scored; it only carries the
        // shared prepared contents and the builder settings to
        // `with_test` siblings.
        let probe = MarchTest::new(
            "search probe",
            vec![MarchElement::any_order(vec![Operation::w0()])],
        )
        .expect("probe test is well formed");
        let template = CoverageEngine::builder(config)
            .test(&probe)
            .options(options.evaluation)
            .strategy(Strategy::Serial)
            .build()?;
        let wide_template = if threads > 1 {
            Some(
                CoverageEngine::builder(config)
                    .test(&probe)
                    .options(options.evaluation)
                    .strategy(options.strategy)
                    .build()?,
            )
        } else {
            None
        };
        Ok(Self {
            universe,
            registry,
            template,
            wide_template,
            threads,
        })
    }

    /// The memory shape candidates are evaluated against.
    #[must_use]
    pub fn config(&self) -> MemoryConfig {
        self.template.config()
    }

    /// The fault universe candidates are scored over.
    #[must_use]
    pub fn universe(&self) -> &[Fault] {
        &self.universe
    }

    /// The scheme registry driving [`Score::scheme_cost`], when present.
    #[must_use]
    pub fn registry(&self) -> Option<&SchemeRegistry> {
        self.registry.as_ref()
    }

    /// The resolved batch worker count (1 = serial).
    #[must_use]
    pub fn worker_threads(&self) -> usize {
        self.threads
    }

    /// Scores one candidate. Returns `Ok(None)` when the candidate is
    /// *infeasible* — a registered scheme cannot transform it (for example
    /// its reads are inconsistent, or it has no read at all so no
    /// prediction test exists); strategies reject such candidates.
    ///
    /// A parallel strategy parallelises this call *inside* the engine (its
    /// streaming windows fan the universe out); the result is bit-identical
    /// to a serial evaluation either way.
    ///
    /// # Errors
    ///
    /// [`SearchError::Coverage`] for engine failures (a candidate that
    /// cannot be lowered, or a fault that does not fit the memory shape).
    pub fn score(&self, test: &MarchTest) -> Result<Option<Score>, SearchError> {
        self.score_on(self.wide_template.as_ref().unwrap_or(&self.template), test)
    }

    /// Serial-engine scoring, used by batch workers (each worker is one
    /// thread; the batch provides the parallelism).
    fn score_serial(&self, test: &MarchTest) -> Result<Option<Score>, SearchError> {
        self.score_on(&self.template, test)
    }

    fn score_on(
        &self,
        template: &CoverageEngine,
        test: &MarchTest,
    ) -> Result<Option<Score>, SearchError> {
        let obs = search_obs();
        obs.scored.incr();
        let Some(scheme_cost) = self.scheme_cost(test) else {
            obs.infeasible.incr();
            return Ok(None);
        };
        let engine = template.with_test(test)?;
        let report = engine.report(&self.universe)?;
        Ok(Some(Score {
            detected: report.detected_faults(),
            total_faults: report.total_faults(),
            test_ops: test.operations_per_word(),
            scheme_cost,
        }))
    }

    /// Scores a batch of candidates, fanning across the objective's worker
    /// threads (one serial engine per candidate — the batch provides the
    /// parallelism). Results come back in candidate order and are
    /// bit-identical for any thread count.
    ///
    /// # Errors
    ///
    /// See [`Objective::score`]; the earliest failing candidate's error is
    /// returned.
    pub fn score_batch(&self, tests: &[MarchTest]) -> Result<Vec<Option<Score>>, SearchError> {
        if self.threads <= 1 || tests.len() <= 1 {
            return tests.iter().map(|test| self.score(test)).collect();
        }
        #[cfg(feature = "parallel")]
        {
            let chunk_size = tests.len().div_ceil(self.threads);
            let results: Vec<Result<Option<Score>, SearchError>> = std::thread::scope(|scope| {
                let handles: Vec<_> = tests
                    .chunks(chunk_size)
                    .map(|chunk| {
                        scope.spawn(move || {
                            chunk
                                .iter()
                                .map(|test| self.score_serial(test))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|handle| handle.join().expect("search worker panicked"))
                    .collect()
            });
            results.into_iter().collect()
        }
        #[cfg(not(feature = "parallel"))]
        {
            tests.iter().map(|test| self.score(test)).collect()
        }
    }

    /// The transparent session cost of a candidate, or `None` when a
    /// registered scheme cannot transform it.
    fn scheme_cost(&self, test: &MarchTest) -> Option<usize> {
        match &self.registry {
            None => Some(test.operations_per_word()),
            Some(registry) => {
                let mut total = 0usize;
                for scheme in registry.iter() {
                    total += scheme.transform(test).ok()?.exact_complexity().total();
                }
                Some(total)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twm_coverage::UniverseBuilder;
    use twm_march::algorithms::{march_c_minus, mats_plus};

    fn saf_tf_universe(config: MemoryConfig) -> Vec<Fault> {
        UniverseBuilder::new(config).stuck_at().transition().build()
    }

    fn objective(width: usize) -> Objective {
        let config = MemoryConfig::new(8, width).unwrap();
        Objective::new(
            config,
            saf_tf_universe(config),
            Some(SchemeRegistry::comparison(width).unwrap()),
            ObjectiveOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_inputs() {
        let config = MemoryConfig::new(8, 4).unwrap();
        assert_eq!(
            Objective::new(config, Vec::new(), None, ObjectiveOptions::default()).unwrap_err(),
            SearchError::EmptyUniverse
        );
        let mismatched = SchemeRegistry::comparison(8).unwrap();
        assert_eq!(
            Objective::new(
                config,
                saf_tf_universe(config),
                Some(mismatched),
                ObjectiveOptions::default(),
            )
            .unwrap_err(),
            SearchError::WidthMismatch {
                registry: 8,
                memory: 4
            }
        );
        let zero_threads = ObjectiveOptions {
            strategy: Strategy::Parallel { threads: 0 },
            ..ObjectiveOptions::default()
        };
        assert!(matches!(
            Objective::new(config, saf_tf_universe(config), None, zero_threads),
            Err(SearchError::Coverage(_))
        ));
        let random_content = ObjectiveOptions {
            evaluation: EvaluationOptions {
                content: ContentPolicy::Random { seed: 1 },
                contents_per_fault: 1,
            },
            ..ObjectiveOptions::default()
        };
        assert!(matches!(
            Objective::new(config, saf_tf_universe(config), None, random_content),
            Err(SearchError::InvalidOptions { .. })
        ));
    }

    #[test]
    fn march_c_minus_scores_full_saf_tf_coverage() {
        let objective = objective(4);
        let score = objective.score(&march_c_minus()).unwrap().unwrap();
        assert!(score.full_coverage());
        assert_eq!(score.total_faults, 2 * 8 * 4 * 2);
        assert_eq!(score.test_ops, 10);
        // Scheme 1 (60+30) + TOMT (34+0) + TWM_TA (20+10) at W=4.
        let registry = objective.registry().unwrap();
        let expected: usize = registry
            .iter()
            .map(|s| {
                s.transform(&march_c_minus())
                    .unwrap()
                    .exact_complexity()
                    .total()
            })
            .sum();
        assert_eq!(score.scheme_cost, expected);
    }

    #[test]
    fn registry_free_objective_costs_raw_length() {
        let config = MemoryConfig::new(8, 4).unwrap();
        let objective = Objective::new(
            config,
            saf_tf_universe(config),
            None,
            ObjectiveOptions::default(),
        )
        .unwrap();
        let score = objective.score(&mats_plus()).unwrap().unwrap();
        assert_eq!(score.cost(), 5);
        assert_eq!(score.test_ops, 5);
    }

    #[test]
    fn untransformable_candidates_are_infeasible_not_errors() {
        let objective = objective(4);
        // Reads inconsistent with the test's own writes: the registry's
        // transforms reject it (the mutation model's repair would have
        // rewritten the read, but `score` accepts arbitrary tests).
        let inconsistent = MarchTest::new(
            "inconsistent",
            vec![
                MarchElement::any_order(vec![Operation::w0()]),
                MarchElement::any_order(vec![Operation::r1()]),
            ],
        )
        .unwrap();
        assert_eq!(objective.score(&inconsistent).unwrap(), None);
    }

    #[test]
    fn batch_results_match_single_scores_in_order() {
        let objective = objective(4);
        let tests = vec![march_c_minus(), mats_plus(), march_c_minus()];
        let batch = objective.score_batch(&tests).unwrap();
        for (test, scored) in tests.iter().zip(&batch) {
            assert_eq!(*scored, objective.score(test).unwrap());
        }
        assert_eq!(batch[0], batch[2]);
    }

    #[test]
    fn floors_resolve_against_the_seed_score() {
        let score = Score {
            detected: 90,
            total_faults: 100,
            test_ops: 10,
            scheme_cost: 40,
        };
        assert_eq!(CoverageFloor::Seed.resolve(&score), 90);
        assert_eq!(CoverageFloor::Full.resolve(&score), 100);
        assert_eq!(CoverageFloor::Detected(42).resolve(&score), 42);
    }
}
