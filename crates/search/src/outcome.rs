//! The result every search strategy returns: the winning candidate, the
//! (coverage, cost) Pareto front of everything feasible that was evaluated,
//! and a full provenance log of the accepted mutations.

use serde::{Deserialize, Serialize};

use crate::{Mutation, ParetoFront, Score, ScoredTest};

/// One accepted step of a search run.
///
/// Entries contain only exactly-comparable data (integers and notation
/// strings), so two runs agree on their logs bit for bit — the determinism
/// property `tests/determinism.rs` checks across thread counts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProvenanceEntry {
    /// Search step (0 is the seed entry; greedy counts rounds, beam counts
    /// generations, annealing counts steps).
    pub step: usize,
    /// The accepted mutation; `None` for the seed entry.
    pub mutation: Option<Mutation>,
    /// Whether the entry was accepted into the search state (always `true`
    /// for the entries strategies currently log; kept explicit so logs can
    /// grow rejected entries without a format change).
    pub accepted: bool,
    /// The candidate's score after the mutation.
    pub score: Score,
    /// The candidate in march notation.
    pub notation: String,
    /// March notation of the candidate the mutation was applied to
    /// (`None` for the seed entry). Together with `mutation` this makes
    /// the log replayable for every strategy: greedy and annealing chains
    /// apply each mutation to the previous entry's candidate, while beam
    /// entries name the beam member they mutated.
    pub parent: Option<String>,
}

/// The outcome of one strategy run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// The winning candidate: the cheapest test meeting the strategy's
    /// coverage floor.
    pub best: ScoredTest,
    /// Pareto front over (coverage, cost) of every feasible candidate the
    /// run evaluated, including ones below the floor.
    pub front: ParetoFront,
    /// Provenance log: the seed entry followed by every accepted mutation.
    pub log: Vec<ProvenanceEntry>,
    /// Number of candidate evaluations the run spent.
    pub evaluated: usize,
}

impl SearchOutcome {
    /// Convenience: the winning candidate's score.
    #[must_use]
    pub fn best_score(&self) -> Score {
        self.best.score
    }
}
