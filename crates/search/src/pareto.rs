//! The (coverage, cost) Pareto front maintained across a search run.

use serde::{Deserialize, Serialize};

use crate::{Score, ScoredTest};

/// Whether `a` weakly dominates `b` on the (detected, cost) plane: at least
/// as much coverage for at most the cost.
fn dominates(a: Score, b: Score) -> bool {
    a.detected >= b.detected && a.cost() <= b.cost()
}

/// The set of non-dominated (coverage, cost) candidates seen by a search,
/// kept sorted by ascending cost (equivalently, ascending coverage — a
/// non-dominated set admits no other order).
///
/// Insertion is first-seen-wins for equal scores, so a deterministic
/// insertion order yields a deterministic front (the property
/// `tests/determinism.rs` pins across thread counts).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParetoFront {
    points: Vec<ScoredTest>,
}

impl ParetoFront {
    /// Creates an empty front.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers a candidate to the front. Returns `true` when the candidate
    /// enters (it is not weakly dominated by any member); dominated members
    /// are evicted.
    pub fn insert(&mut self, candidate: ScoredTest) -> bool {
        if self
            .points
            .iter()
            .any(|point| dominates(point.score, candidate.score))
        {
            return false;
        }
        self.points
            .retain(|point| !dominates(candidate.score, point.score));
        let position = self
            .points
            .partition_point(|point| point.score.cost() < candidate.score.cost());
        self.points.insert(position, candidate);
        true
    }

    /// The non-dominated candidates, sorted by ascending cost.
    #[must_use]
    pub fn points(&self) -> &[ScoredTest] {
        &self.points
    }

    /// The highest-coverage member (the last point: a non-dominated set
    /// sorted by cost is also sorted by coverage).
    #[must_use]
    pub fn best_coverage(&self) -> Option<&ScoredTest> {
        self.points.last()
    }

    /// Number of front members.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the front is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twm_march::algorithms::mats_plus;

    fn scored(detected: usize, cost: usize) -> ScoredTest {
        ScoredTest {
            test: mats_plus(),
            score: Score {
                detected,
                total_faults: 100,
                test_ops: cost,
                scheme_cost: cost,
            },
        }
    }

    #[test]
    fn dominated_points_are_rejected_and_evicted() {
        let mut front = ParetoFront::new();
        assert!(front.insert(scored(50, 20)));
        // Strictly better on both axes: evicts the first point.
        assert!(front.insert(scored(60, 10)));
        assert_eq!(front.len(), 1);
        // Weakly dominated (same score): rejected, first-seen wins.
        assert!(!front.insert(scored(60, 10)));
        // Dominated on one axis: rejected.
        assert!(!front.insert(scored(60, 15)));
        assert!(!front.insert(scored(55, 10)));
        // Incomparable: more coverage at more cost.
        assert!(front.insert(scored(80, 30)));
        assert_eq!(front.len(), 2);
    }

    #[test]
    fn points_stay_sorted_by_cost_and_coverage() {
        let mut front = ParetoFront::new();
        front.insert(scored(80, 30));
        front.insert(scored(50, 10));
        front.insert(scored(65, 20));
        let costs: Vec<usize> = front.points().iter().map(|p| p.score.cost()).collect();
        assert_eq!(costs, vec![10, 20, 30]);
        let detected: Vec<usize> = front.points().iter().map(|p| p.score.detected).collect();
        assert_eq!(detected, vec![50, 65, 80]);
        assert_eq!(front.best_coverage().unwrap().score.detected, 80);
    }

    #[test]
    fn empty_front_behaves() {
        let front = ParetoFront::new();
        assert!(front.is_empty());
        assert!(front.best_coverage().is_none());
    }
}
