//! Shared strategy start-up: repair and score the seed test, resolve the
//! coverage floor, and open the Pareto front and provenance log.

use twm_march::MarchTest;

use crate::{
    CoverageFloor, MutationModel, Objective, ParetoFront, ProvenanceEntry, Score, ScoredTest,
    SearchError,
};

/// The state every strategy starts from.
pub(crate) struct SeedState {
    pub test: MarchTest,
    pub score: Score,
    /// Resolved detected-fault floor candidates must keep.
    pub floor: usize,
    pub front: ParetoFront,
    pub log: Vec<ProvenanceEntry>,
}

/// Repairs and scores the seed, checks it meets the floor, and opens the
/// front and log with the seed entry.
pub(crate) fn seed_state(
    objective: &Objective,
    model: &MutationModel,
    seed: &MarchTest,
    floor: CoverageFloor,
) -> Result<SeedState, SearchError> {
    let test = model
        .repair(seed.name(), seed.elements().to_vec())
        .ok_or_else(|| SearchError::InfeasibleSeed {
            detail: format!(
                "'{}' is not repairable into a well-formed bit-oriented candidate \
                 under the mutation model's caps",
                seed.name()
            ),
        })?;
    let score = objective
        .score(&test)?
        .ok_or_else(|| SearchError::InfeasibleSeed {
            detail: format!(
                "'{}' is not transformable by the objective's scheme registry",
                seed.name()
            ),
        })?;
    let floor = floor.resolve(&score);
    if score.detected < floor {
        return Err(SearchError::InfeasibleSeed {
            detail: format!(
                "'{}' detects {}/{} faults but the coverage floor requires {}",
                seed.name(),
                score.detected,
                score.total_faults,
                floor
            ),
        });
    }
    let mut front = ParetoFront::new();
    front.insert(ScoredTest {
        test: test.clone(),
        score,
    });
    let log = vec![ProvenanceEntry {
        step: 0,
        mutation: None,
        accepted: true,
        score,
        notation: test.to_string(),
        parent: None,
    }];
    Ok(SeedState {
        test,
        score,
        floor,
        front,
        log,
    })
}
