//! Search determinism across execution strategies: (same seed, same
//! universe) ⇒ identical Pareto front and provenance log for
//! `Strategy::Serial` and `Strategy::Parallel { threads }` at several
//! thread counts.
//!
//! This is the contract that makes the search's parallelism safe to use:
//! candidates are proposed on the driving thread, scored independently,
//! and merged in order, so fan-out must never change an outcome.

use proptest::prelude::*;

use twm_core::scheme::SchemeRegistry;
use twm_coverage::{Strategy, UniverseBuilder};
use twm_march::algorithms::{march_c_minus, march_u, mats_plus_plus};
use twm_march::MarchTest;
use twm_mem::MemoryConfig;
use twm_search::{
    anneal, beam_search, minimise_greedy, AnnealOptions, BeamOptions, GreedyOptions, Objective,
    ObjectiveOptions, SearchOutcome,
};

const THREAD_COUNTS: [usize; 3] = [2, 3, 5];

fn objective_with(strategy: Strategy) -> Objective {
    let config = MemoryConfig::new(8, 4).unwrap();
    let universe = UniverseBuilder::new(config).stuck_at().transition().build();
    Objective::new(
        config,
        universe,
        Some(SchemeRegistry::comparison(4).unwrap()),
        ObjectiveOptions {
            strategy,
            ..ObjectiveOptions::default()
        },
    )
    .unwrap()
}

/// Runs one strategy under Serial and every parallel thread count and
/// asserts the outcomes (front, log, best, evaluation count) are identical.
fn assert_strategy_invariant<F>(run: F)
where
    F: Fn(&Objective) -> SearchOutcome,
{
    let reference = run(&objective_with(Strategy::Serial));
    for threads in THREAD_COUNTS {
        let outcome = run(&objective_with(Strategy::Parallel { threads }));
        assert_eq!(
            reference, outcome,
            "outcome diverged at {threads} worker threads"
        );
    }
}

fn seed_test(index: usize) -> MarchTest {
    match index % 3 {
        0 => march_c_minus(),
        1 => march_u(),
        _ => mats_plus_plus(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn beam_outcome_is_thread_count_invariant(seed in 0u64..1000, test in 0usize..3) {
        let options = BeamOptions {
            seed,
            beam_width: 3,
            generations: 3,
            proposals_per_member: 4,
            ..BeamOptions::default()
        };
        assert_strategy_invariant(|objective| {
            beam_search(objective, &seed_test(test), &options).unwrap()
        });
    }

    #[test]
    fn anneal_outcome_is_thread_count_invariant(seed in 0u64..1000, test in 0usize..3) {
        let options = AnnealOptions {
            seed,
            steps: 25,
            ..AnnealOptions::default()
        };
        assert_strategy_invariant(|objective| {
            anneal(objective, &seed_test(test), &options).unwrap()
        });
    }
}

#[test]
fn greedy_outcome_is_thread_count_invariant() {
    // Greedy draws no randomness at all, so one check per seed test pins
    // the batch-evaluation merge order.
    for index in 0..3 {
        assert_strategy_invariant(|objective| {
            minimise_greedy(objective, &seed_test(index), &GreedyOptions::default()).unwrap()
        });
    }
}

#[test]
fn repeated_runs_share_one_objective() {
    // Determinism also holds when one objective instance (and its arena
    // pools) serves several consecutive runs.
    let objective = objective_with(Strategy::Parallel { threads: 4 });
    let options = BeamOptions {
        seed: 99,
        generations: 3,
        ..BeamOptions::default()
    };
    let first = beam_search(&objective, &march_c_minus(), &options).unwrap();
    let second = beam_search(&objective, &march_c_minus(), &options).unwrap();
    assert_eq!(first, second);
}
