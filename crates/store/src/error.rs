use std::fmt;
use std::io;

use twm_repair::RepairError;

use crate::wire::WireError;
use crate::FORMAT_VERSION;

/// Errors of the paged dictionary store.
///
/// Corruption is always a **typed** error — a truncated file, a flipped
/// byte or a foreign file can never panic the reader or hand back garbage
/// classes, a contract pinned by the corruption tests in
/// `tests/paged_corruption.rs`.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// The underlying file I/O failed.
    Io(io::Error),
    /// The file does not start with the store magic — not a paged
    /// dictionary at all.
    NotAStore,
    /// The file's format version is not supported by this build.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
        /// Version this build reads and writes.
        supported: u32,
    },
    /// A page's checksum does not match its contents — the file is
    /// corrupt at that page.
    ChecksumMismatch {
        /// Index of the failing page.
        page: u32,
    },
    /// The file ends before a page the header promises.
    Truncated {
        /// Index of the missing page.
        page: u32,
    },
    /// The file's structure is internally inconsistent (bad entry shapes,
    /// out-of-range handles, unsorted trails).
    Corrupt(String),
    /// A wire-encoded region (metadata, payload record) failed to decode.
    Wire(WireError),
    /// The store options are unusable (page too small for an index entry,
    /// zero-size pages).
    InvalidOptions(String),
    /// The class stream handed to the writer is not strictly sorted by
    /// trail — the on-disk binary search would be meaningless.
    UnsortedClasses,
    /// An error from the repair layer (dictionary build or reassembly).
    Repair(RepairError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::NotAStore => write!(f, "not a paged dictionary store (bad magic)"),
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported store format version {found} (this build reads version {supported})"
            ),
            StoreError::ChecksumMismatch { page } => {
                write!(f, "checksum mismatch on page {page}")
            }
            StoreError::Truncated { page } => {
                write!(f, "file truncated: page {page} is missing")
            }
            StoreError::Corrupt(message) => write!(f, "corrupt store: {message}"),
            StoreError::Wire(e) => write!(f, "store wire region: {e}"),
            StoreError::InvalidOptions(message) => write!(f, "invalid store options: {message}"),
            StoreError::UnsortedClasses => {
                write!(f, "class stream is not strictly sorted by trail")
            }
            StoreError::Repair(e) => write!(f, "repair error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Wire(e) => Some(e),
            StoreError::Repair(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<WireError> for StoreError {
    fn from(e: WireError) -> Self {
        StoreError::Wire(e)
    }
}

impl From<RepairError> for StoreError {
    fn from(e: RepairError) -> Self {
        StoreError::Repair(e)
    }
}

impl StoreError {
    /// Renders the error for the [`twm_repair::RepairError::Lookup`]
    /// channel — how paged lookups surface through the [`crate::TrailLookup`]
    /// trait.
    #[must_use]
    pub fn into_lookup_error(self) -> RepairError {
        match self {
            StoreError::Repair(e) => e,
            other => RepairError::Lookup(other.to_string()),
        }
    }
}

/// Keep the doc link on `UnsupportedVersion` honest.
const _: () = assert!(FORMAT_VERSION >= 1);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let samples: Vec<StoreError> = vec![
            StoreError::Io(io::Error::other("disk gone")),
            StoreError::NotAStore,
            StoreError::UnsupportedVersion {
                found: 9,
                supported: 1,
            },
            StoreError::ChecksumMismatch { page: 3 },
            StoreError::Truncated { page: 7 },
            StoreError::Corrupt("entry prefix exceeds trail length".into()),
            StoreError::Wire(WireError::Malformed("bad tag".into())),
            StoreError::InvalidOptions("page size 8 below minimum".into()),
            StoreError::UnsortedClasses,
            StoreError::Repair(RepairError::EmptyUniverse),
        ];
        for err in samples {
            let msg = err.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn lookup_conversion_preserves_repair_errors() {
        let wrapped = StoreError::Repair(RepairError::EmptyUniverse).into_lookup_error();
        assert_eq!(wrapped, RepairError::EmptyUniverse);
        assert!(matches!(
            StoreError::ChecksumMismatch { page: 2 }.into_lookup_error(),
            RepairError::Lookup(_)
        ));
        fn assert_error<E: std::error::Error + Send + Sync + 'static>() {}
        assert_error::<StoreError>();
    }
}
