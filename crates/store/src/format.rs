//! The paged file format, version 1.
//!
//! A store file is a sequence of **fixed-size pages** (the size is chosen
//! at write time and recorded in the header). Every page ends with an
//! 8-byte FNV-1a 64 checksum over its preceding bytes, so the usable
//! capacity of a page is `page_size - 8`. The regions, in file order:
//!
//! | pages | content |
//! |---|---|
//! | `0` | header — magic, version, geometry, ambiguity statistics |
//! | `1 ..= meta_pages` | wire-encoded store metadata (`StoreMeta`), chunked |
//! | next `index_pages` | sorted, prefix-compressed trail-index entries |
//! | next `payload_pages` | length-prefixed wire-encoded injection lists |
//!
//! ## Index entries
//!
//! Trails are stored as raw `u128` little-endian signature words (16
//! bytes each; the shared word width lives in the header). Consecutive
//! trails in one dictionary differ late — per-stage trails share long
//! runs — so each entry stores the length of the prefix it shares with
//! the **previous entry of the same page** plus its suffix:
//!
//! ```text
//! u16 prefix_words | u16 suffix_words | u32 injections
//! | u32 payload_page | u32 payload_offset | suffix_words × u128 LE
//! ```
//!
//! `prefix_words + suffix_words` always equals the dictionary's trail
//! length, and the first entry of every page is written with a zero
//! prefix, so pages are self-contained: the lookup binary-searches pages
//! by their first trail, then scans one page. A `0xFFFF` prefix marks
//! end-of-page early. Payload handles are `(page, offset)` into the
//! payload region's linear byte stream (records may span pages).

use crate::{StoreError, FORMAT_VERSION};

/// The file magic: identifies a paged dictionary store.
pub const MAGIC: [u8; 8] = *b"TWMSTORE";

/// Bytes of every page reserved for its FNV-1a 64 checksum.
pub const CHECKSUM_LEN: usize = 8;

/// Smallest accepted page size. Tests use small pages to force many-page
/// files; production defaults to 4096.
pub const MIN_PAGE_SIZE: usize = 128;

/// Largest accepted page size (a sanity bound when reading headers, so a
/// corrupt size cannot drive a giant allocation).
pub const MAX_PAGE_SIZE: usize = 1 << 24;

/// Fixed byte size of an index entry before its suffix words.
pub const ENTRY_FIXED: usize = 16;

/// Bytes per trail signature word on disk (`u128` LE).
pub const TRAIL_WORD_BYTES: usize = 16;

/// The `prefix_words` sentinel marking end-of-entries within a page.
pub const END_OF_PAGE: u16 = 0xFFFF;

/// FNV-1a 64 over a byte slice — page checksums and test fingerprints.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Writes `page`'s checksum over its own contents into its last 8 bytes.
pub fn seal_page(page: &mut [u8]) {
    let body = page.len() - CHECKSUM_LEN;
    let checksum = fnv64(&page[..body]);
    page[body..].copy_from_slice(&checksum.to_le_bytes());
}

/// Verifies `page`'s trailing checksum.
///
/// # Errors
///
/// [`StoreError::ChecksumMismatch`] naming `index` when it does not match.
pub fn verify_page(page: &[u8], index: u32) -> Result<(), StoreError> {
    let body = page.len() - CHECKSUM_LEN;
    let stored = u64::from_le_bytes(page[body..].try_into().expect("8 checksum bytes"));
    if fnv64(&page[..body]) != stored {
        return Err(StoreError::ChecksumMismatch { page: index });
    }
    Ok(())
}

/// Number of pages needed to hold `bytes` at `capacity` usable bytes per
/// page.
#[must_use]
pub fn pages_for(bytes: u64, capacity: usize) -> u32 {
    u32::try_from(bytes.div_ceil(capacity as u64)).expect("page count fits u32")
}

/// The decoded header page — the file geometry plus the precomputed
/// ambiguity statistics (fixed-width, so the header can be rewritten in
/// place once the class stream has been drained).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Page size in bytes, checksum included.
    pub page_size: u32,
    /// Byte length of the wire-encoded metadata region.
    pub meta_bytes: u64,
    /// Pages holding the metadata region.
    pub meta_pages: u32,
    /// Pages holding the sorted trail index.
    pub index_pages: u32,
    /// Pages holding the payload region.
    pub payload_pages: u32,
    /// Ambiguity classes indexed (index entries).
    pub entries: u64,
    /// Signature-detectable injections indexed.
    pub indexed: u64,
    /// Injections undetected under the reference content.
    pub undetected: u64,
    /// Size of the largest ambiguity class.
    pub max_class_size: u64,
    /// Classes holding exactly one injection.
    pub distinguishable: u64,
    /// Signatures per trail.
    pub trail_words: u32,
    /// Bit width of every signature word.
    pub width: u32,
    /// Byte length of the payload region's linear stream.
    pub payload_bytes: u64,
}

impl Header {
    /// Encodes the header into a zeroed page buffer and seals it.
    ///
    /// # Panics
    ///
    /// Panics if `page` is shorter than the fixed header layout — the
    /// writer validates the page size first.
    pub fn encode(&self, page: &mut [u8]) {
        page.fill(0);
        page[0..8].copy_from_slice(&MAGIC);
        page[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        page[12..16].copy_from_slice(&self.page_size.to_le_bytes());
        page[16..24].copy_from_slice(&self.meta_bytes.to_le_bytes());
        page[24..28].copy_from_slice(&self.meta_pages.to_le_bytes());
        page[28..32].copy_from_slice(&self.index_pages.to_le_bytes());
        page[32..36].copy_from_slice(&self.payload_pages.to_le_bytes());
        page[36..44].copy_from_slice(&self.entries.to_le_bytes());
        page[44..52].copy_from_slice(&self.indexed.to_le_bytes());
        page[52..60].copy_from_slice(&self.undetected.to_le_bytes());
        page[60..68].copy_from_slice(&self.max_class_size.to_le_bytes());
        page[68..76].copy_from_slice(&self.distinguishable.to_le_bytes());
        page[76..80].copy_from_slice(&self.trail_words.to_le_bytes());
        page[80..84].copy_from_slice(&self.width.to_le_bytes());
        page[84..92].copy_from_slice(&self.payload_bytes.to_le_bytes());
        seal_page(page);
    }

    /// Decodes a verified header page.
    ///
    /// The caller has already checked magic, version and checksum (they
    /// need the page size before the page can be fetched whole); this
    /// only lifts the remaining fields.
    #[must_use]
    pub fn decode(page: &[u8]) -> Self {
        let u32_at = |at: usize| u32::from_le_bytes(page[at..at + 4].try_into().expect("4 bytes"));
        let u64_at = |at: usize| u64::from_le_bytes(page[at..at + 8].try_into().expect("8 bytes"));
        Self {
            page_size: u32_at(12),
            meta_bytes: u64_at(16),
            meta_pages: u32_at(24),
            index_pages: u32_at(28),
            payload_pages: u32_at(32),
            entries: u64_at(36),
            indexed: u64_at(44),
            undetected: u64_at(52),
            max_class_size: u64_at(60),
            distinguishable: u64_at(68),
            trail_words: u32_at(76),
            width: u32_at(80),
            payload_bytes: u64_at(84),
        }
    }

    /// Usable bytes per page (page size minus the checksum).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.page_size as usize - CHECKSUM_LEN
    }

    /// Total pages in the file.
    #[must_use]
    pub fn total_pages(&self) -> u32 {
        1 + self.meta_pages + self.index_pages + self.payload_pages
    }

    /// First page of the index region.
    #[must_use]
    pub fn index_start(&self) -> u32 {
        1 + self.meta_pages
    }

    /// First page of the payload region.
    #[must_use]
    pub fn payload_start(&self) -> u32 {
        self.index_start() + self.index_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_round_trips_through_a_page() {
        let header = Header {
            page_size: 256,
            meta_bytes: 321,
            meta_pages: 2,
            index_pages: 9,
            payload_pages: 4,
            entries: 100,
            indexed: 140,
            undetected: 3,
            max_class_size: 7,
            distinguishable: 80,
            trail_words: 11,
            width: 8,
            payload_bytes: 999,
        };
        let mut page = vec![0u8; 256];
        header.encode(&mut page);
        assert_eq!(&page[0..8], &MAGIC);
        verify_page(&page, 0).unwrap();
        assert_eq!(Header::decode(&page), header);
        assert_eq!(header.capacity(), 248);
        assert_eq!(header.total_pages(), 16);
        assert_eq!(header.index_start(), 3);
        assert_eq!(header.payload_start(), 12);
    }

    #[test]
    fn checksums_catch_a_flipped_byte() {
        let mut page = vec![0u8; 128];
        page[40] = 7;
        seal_page(&mut page);
        verify_page(&page, 5).unwrap();
        page[41] ^= 0x10;
        assert!(matches!(
            verify_page(&page, 5),
            Err(StoreError::ChecksumMismatch { page: 5 })
        ));
    }

    #[test]
    fn page_math() {
        assert_eq!(pages_for(0, 120), 0);
        assert_eq!(pages_for(1, 120), 1);
        assert_eq!(pages_for(120, 120), 1);
        assert_eq!(pages_for(121, 120), 2);
    }
}
