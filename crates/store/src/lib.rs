//! # twm-store — paged, disk-backed signature dictionaries
//!
//! Word-oriented transparent-test dictionaries (trail → ambiguity class,
//! per the DATE 2005 diagnosis flow) grow with the fault universe and the
//! sampled multi-fault pairs — far past RAM for fleet-scale universes.
//! This crate serves them **out of core**:
//!
//! * [`mod@format`] — the paged file format, version [`FORMAT_VERSION`]:
//!   fixed-size checksummed pages; a header page carrying geometry and
//!   ambiguity statistics; a wire-encoded metadata region (scheme, test
//!   fingerprint, MISR template, content policy, fault-free trail);
//!   sorted **prefix-compressed** trail-index pages; and variable-length
//!   payload pages reached by `(page, offset)` handles.
//! * [`Pager`] — checksum-verified page reads behind a bounded LRU cache
//!   ([`PageCacheMetrics`] mirrors the fleet runtime-cache counters), so
//!   serving memory is the **cache budget**, not the dictionary size.
//! * [`PagedDictionary`] — implements `twm_repair`'s [`TrailLookup`]
//!   alongside the in-RAM `SignatureDictionary`: lookups binary-search
//!   index pages streamed from disk and deserialise one class. Built
//!   either by [`PagedDictionary::build_to_disk`] (streams classes during
//!   construction) or persisted from RAM with [`PagedDictionary::write`].
//! * [`wire`] — the self-describing codec, now streaming over
//!   [`std::io::Read`]/[`std::io::Write`]; `twm-fleet`'s codec wraps it.
//!
//! ```
//! use twm_core::scheme::{SchemeId, SchemeRegistry};
//! use twm_coverage::{CoverageEngine, UniverseBuilder};
//! use twm_march::algorithms::mats_plus;
//! use twm_mem::MemoryConfig;
//! use twm_repair::{DictionaryOptions, TrailLookup};
//! use twm_store::{PagedDictionary, StoreOptions};
//!
//! let config = MemoryConfig::new(8, 4).unwrap();
//! let registry = SchemeRegistry::all(4).unwrap();
//! let engine = CoverageEngine::for_scheme(
//!     registry.get(SchemeId::TwmTa).unwrap(),
//!     &mats_plus(),
//!     config,
//! )
//! .unwrap()
//! .build()
//! .unwrap();
//! let universe = UniverseBuilder::new(config).stuck_at().transition().build();
//!
//! let dir = std::env::temp_dir().join(format!("twm-store-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("mats_plus.twmstore");
//!
//! // Build straight to disk; serve lookups under a bounded page cache.
//! let store = PagedDictionary::build_to_disk(
//!     &engine,
//!     &universe,
//!     &DictionaryOptions::default(),
//!     &path,
//!     &StoreOptions::default(),
//! )
//! .unwrap();
//! let diagnosis = twm_repair::localise_trail(&store, store.reference_trail()).unwrap();
//! assert!(diagnosis.clean);
//! std::fs::remove_file(&path).unwrap();
//! ```

pub mod error;
pub mod format;
pub mod paged;
pub mod pager;
pub mod wire;
pub(crate) mod writer;

/// On-disk format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

pub use error::StoreError;
pub use paged::{ClassIter, PagedDictionary, StoreOptions};
pub use pager::{PageCacheMetrics, Pager};
// The lookup trait the paged backend implements, re-exported so store
// users need not name `twm_repair` for the common path.
pub use twm_repair::TrailLookup;
