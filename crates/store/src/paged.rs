//! [`PagedDictionary`]: a signature dictionary served from its paged
//! file through the bounded page cache — the out-of-core counterpart of
//! the in-RAM [`SignatureDictionary`].
//!
//! Only the header and the small metadata region (scheme, shapes, MISR
//! template, fault-free trail) are resident; every lookup binary-searches
//! **index pages** streamed from disk by their first trail, scans one
//! page reconstructing prefix-compressed trails, and follows the payload
//! handle to deserialise just the matched class. Serving memory is
//! bounded by [`StoreOptions::cache_budget`], not dictionary size.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

use twm_bist::Misr;
use twm_core::scheme::SchemeId;
use twm_coverage::{ContentPolicy, CoverageEngine};
use twm_march::MarchTest;
use twm_mem::{Fault, MemoryConfig, Word};
use twm_repair::{
    AmbiguityClass, AmbiguityStats, DictionaryOptions, DictionaryStream, RepairError,
    SignatureDictionary, SignatureTrail, TrailLookup,
};

use crate::format::{
    fnv64, verify_page, Header, END_OF_PAGE, ENTRY_FIXED, MAGIC, MAX_PAGE_SIZE, MIN_PAGE_SIZE,
    TRAIL_WORD_BYTES,
};
use crate::pager::{PageCacheMetrics, Pager};
use crate::writer::write_store;
use crate::{wire, StoreError, FORMAT_VERSION};

/// Geometry and budget of a paged dictionary file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreOptions {
    /// Page size in bytes (checksum included). Default 4096; tests use
    /// small pages to force many-page files.
    pub page_size: usize,
    /// Byte budget of the read-side page cache. Default 64 pages of the
    /// default size (256 KiB). A budget below one page disables caching.
    pub cache_budget: usize,
}

impl Default for StoreOptions {
    fn default() -> Self {
        Self {
            page_size: 4096,
            cache_budget: 64 * 4096,
        }
    }
}

/// The resident metadata region of a store file — everything a
/// [`TrailLookup`] must answer without touching the index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct StoreMeta {
    pub scheme: SchemeId,
    pub test_name: String,
    /// FNV-1a 64 fingerprint of the source march test's notation when the
    /// source is recorded (matching `twm-fleet`'s `TestFingerprint`), of
    /// the transparent test name otherwise.
    pub fingerprint: u64,
    pub config: MemoryConfig,
    pub content: ContentPolicy,
    pub misr: Misr,
    pub fault_free: SignatureTrail,
    /// The source (non-transparent) march test, recorded by fleet shard
    /// spills so a paged shard can be re-registered after rehydration.
    pub source: Option<MarchTest>,
}

fn fingerprint_of(source: Option<&MarchTest>, test_name: &str) -> u64 {
    match source {
        Some(test) => fnv64(test.to_string().as_bytes()),
        None => fnv64(test_name.as_bytes()),
    }
}

/// A dictionary served from its paged file — see the [module docs](self).
///
/// Lookups take `&self` (the pager sits behind a mutex), so one paged
/// dictionary can serve concurrent fleet workers.
#[derive(Debug)]
pub struct PagedDictionary {
    path: PathBuf,
    header: Header,
    meta: StoreMeta,
    pager: Mutex<Pager>,
}

impl PagedDictionary {
    /// Builds a dictionary for a scheme engine over a fault universe,
    /// **streaming classes to `path` as they drain** — the out-of-core
    /// construction path. Inputs and build semantics are exactly
    /// [`SignatureDictionary::build`]'s (same parallel fan-out, same
    /// bit-identical grouping); the file is then reopened with `options`'
    /// cache budget.
    ///
    /// # Errors
    ///
    /// [`StoreError::Repair`] for build failures (see
    /// [`SignatureDictionary::build`]), [`StoreError::InvalidOptions`]
    /// for an unusable page size, [`StoreError::Io`] for file failures.
    pub fn build_to_disk(
        engine: &CoverageEngine,
        universe: &[Fault],
        options: &DictionaryOptions,
        path: impl AsRef<Path>,
        store: &StoreOptions,
    ) -> Result<Self, StoreError> {
        let mut stream = DictionaryStream::build(engine, universe, options)?;
        let meta = StoreMeta {
            scheme: stream.scheme(),
            test_name: stream.test_name().to_string(),
            fingerprint: fingerprint_of(None, stream.test_name()),
            config: stream.config(),
            content: stream.content(),
            misr: stream.misr_template().clone(),
            fault_free: stream.fault_free_trail().clone(),
            source: None,
        };
        let undetected = stream.take_undetected();
        write_store(path.as_ref(), store.page_size, &meta, &undetected, stream)?;
        Self::open(path, store)
    }

    /// Persists an in-RAM dictionary to a paged file at `path`.
    ///
    /// # Errors
    ///
    /// As [`PagedDictionary::build_to_disk`], minus the build errors.
    pub fn write(
        dictionary: &SignatureDictionary,
        path: impl AsRef<Path>,
        store: &StoreOptions,
    ) -> Result<(), StoreError> {
        Self::write_with_source(dictionary, None, path, store)
    }

    /// Persists an in-RAM dictionary, recording the source march test the
    /// fleet shard was registered under — the spill path, so rehydration
    /// can rebuild the shard key and its engines.
    ///
    /// # Errors
    ///
    /// As [`PagedDictionary::write`].
    pub fn write_with_source(
        dictionary: &SignatureDictionary,
        source: Option<&MarchTest>,
        path: impl AsRef<Path>,
        store: &StoreOptions,
    ) -> Result<(), StoreError> {
        let meta = StoreMeta {
            scheme: dictionary.scheme(),
            test_name: dictionary.test_name().to_string(),
            fingerprint: fingerprint_of(source, dictionary.test_name()),
            config: dictionary.config(),
            content: dictionary.content(),
            misr: dictionary.misr().clone(),
            fault_free: dictionary.fault_free_trail().clone(),
            source: source.cloned(),
        };
        write_store(
            path.as_ref(),
            store.page_size,
            &meta,
            dictionary.undetected(),
            dictionary.classes().iter().cloned(),
        )?;
        Ok(())
    }

    /// Opens a paged dictionary file, verifying magic, version and the
    /// header/metadata checksums. Only the header and metadata become
    /// resident; `options.cache_budget` bounds everything else.
    ///
    /// (`options.page_size` is ignored on open — the file's recorded page
    /// size wins.)
    ///
    /// # Errors
    ///
    /// * [`StoreError::NotAStore`] when the magic does not match.
    /// * [`StoreError::UnsupportedVersion`] for a foreign format version.
    /// * [`StoreError::Truncated`] / [`StoreError::ChecksumMismatch`] /
    ///   [`StoreError::Corrupt`] for a damaged file.
    /// * [`StoreError::Wire`] when the metadata region does not decode.
    pub fn open(path: impl AsRef<Path>, options: &StoreOptions) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path)?;

        // Bootstrap: magic, version and page size come from the first 16
        // bytes; only then can the full header page be fetched/verified.
        let mut probe = [0u8; 16];
        file.read_exact(&mut probe).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                StoreError::NotAStore
            } else {
                StoreError::Io(e)
            }
        })?;
        if probe[0..8] != MAGIC {
            return Err(StoreError::NotAStore);
        }
        let version = u32::from_le_bytes(probe[8..12].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let page_size = u32::from_le_bytes(probe[12..16].try_into().expect("4 bytes")) as usize;
        if !(MIN_PAGE_SIZE..=MAX_PAGE_SIZE).contains(&page_size) {
            return Err(StoreError::Corrupt(format!(
                "header page size {page_size} outside [{MIN_PAGE_SIZE}, {MAX_PAGE_SIZE}]"
            )));
        }
        let mut header_page = vec![0u8; page_size];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut header_page).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                StoreError::Truncated { page: 0 }
            } else {
                StoreError::Io(e)
            }
        })?;
        verify_page(&header_page, 0)?;
        let header = Header::decode(&header_page);

        // Metadata region (verified page by page, then wire-decoded).
        let capacity = header.capacity();
        let mut meta_bytes = Vec::with_capacity(header.meta_bytes as usize);
        let mut page = vec![0u8; page_size];
        for index in 1..=header.meta_pages {
            file.read_exact(&mut page).map_err(|e| {
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    StoreError::Truncated { page: index }
                } else {
                    StoreError::Io(e)
                }
            })?;
            verify_page(&page, index)?;
            meta_bytes.extend_from_slice(&page[..capacity]);
        }
        if (meta_bytes.len() as u64) < header.meta_bytes {
            return Err(StoreError::Corrupt(format!(
                "metadata region holds {} bytes, header promises {}",
                meta_bytes.len(),
                header.meta_bytes
            )));
        }
        meta_bytes.truncate(header.meta_bytes as usize);
        let meta: StoreMeta = wire::from_bytes(&meta_bytes)?;
        if meta.fault_free.len() != header.trail_words as usize {
            return Err(StoreError::Corrupt(format!(
                "metadata fault-free trail holds {} signatures, header promises {}",
                meta.fault_free.len(),
                header.trail_words
            )));
        }
        if meta.config.width() != header.width as usize {
            return Err(StoreError::Corrupt(format!(
                "metadata width {} disagrees with header width {}",
                meta.config.width(),
                header.width
            )));
        }

        let pager = Pager::new(file, page_size, header.total_pages(), options.cache_budget);
        Ok(Self {
            path,
            header,
            meta,
            pager: Mutex::new(pager),
        })
    }

    /// The file the dictionary is served from.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Total size of the store file in bytes.
    #[must_use]
    pub fn file_bytes(&self) -> u64 {
        u64::from(self.header.total_pages()) * u64::from(self.header.page_size)
    }

    /// The file's page size in bytes.
    #[must_use]
    pub fn page_size(&self) -> usize {
        self.header.page_size as usize
    }

    /// Number of ambiguity classes indexed.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.header.entries as usize
    }

    /// The source march test recorded at write time (fleet spills), if
    /// any.
    #[must_use]
    pub fn source(&self) -> Option<&MarchTest> {
        self.meta.source.as_ref()
    }

    /// The recorded test fingerprint (see [`PagedDictionary::write_with_source`]).
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        self.meta.fingerprint
    }

    /// A snapshot of the page cache's hit/miss/eviction counters.
    #[must_use]
    pub fn cache_metrics(&self) -> PageCacheMetrics {
        self.lock_pager().metrics()
    }

    /// The page cache's byte budget.
    #[must_use]
    pub fn cache_budget(&self) -> usize {
        self.lock_pager().budget()
    }

    fn lock_pager(&self) -> std::sync::MutexGuard<'_, Pager> {
        self.pager
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Looks up an observed trail, deserialising its ambiguity class from
    /// the payload region on a hit. Trails of a different shape than the
    /// dictionary's miss (as with the in-RAM backend).
    ///
    /// # Errors
    ///
    /// [`StoreError`] variants for I/O failures and on-disk corruption —
    /// never panics, never returns a wrong class.
    pub fn lookup(&self, trail: &SignatureTrail) -> Result<Option<AmbiguityClass>, StoreError> {
        let trail_words = self.header.trail_words as usize;
        let width = self.header.width as usize;
        if trail.len() != trail_words
            || trail.signatures().iter().any(|word| word.width() != width)
            || self.header.index_pages == 0
        {
            return Ok(None);
        }
        let target: Vec<u128> = trail
            .signatures()
            .iter()
            .map(|word| word.to_bits())
            .collect();

        let mut pager = self.lock_pager();
        // Binary search for the last index page whose first trail is <=
        // the target.
        let mut low = 0u32;
        let mut high = self.header.index_pages;
        while low < high {
            let mid = low + (high - low) / 2;
            let first = self.first_trail(&mut pager, mid)?;
            if first.as_slice() <= target.as_slice() {
                low = mid + 1;
            } else {
                high = mid;
            }
        }
        let Some(page_index) = low.checked_sub(1) else {
            return Ok(None); // target sorts before the first indexed trail
        };

        // Scan the page, reconstructing prefix-compressed trails.
        let page = pager.page(self.header.index_start() + page_index)?;
        let mut at = 0usize;
        let mut current: Vec<u128> = Vec::with_capacity(trail_words);
        while let Some(entry) = self.decode_entry(&page, &mut at, &mut current, page_index)? {
            if current.as_slice() == target.as_slice() {
                let injections = self.read_injections(&mut pager, entry, page_index)?;
                let signatures = current
                    .iter()
                    .map(|&bits| Word::from_bits(bits, width))
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|e| StoreError::Corrupt(format!("stored trail word: {e}")))?;
                return Ok(Some(AmbiguityClass {
                    trail: SignatureTrail::new(signatures),
                    injections,
                }));
            }
            if current.as_slice() > target.as_slice() {
                break; // sorted page: the target cannot appear later
            }
        }
        Ok(None)
    }

    /// Reads the injections not signature-detectable under the reference
    /// content (payload record 0).
    ///
    /// # Errors
    ///
    /// As [`PagedDictionary::lookup`].
    pub fn undetected(&self) -> Result<Vec<Vec<Fault>>, StoreError> {
        let mut pager = self.lock_pager();
        self.read_record(&mut pager, 0)
    }

    /// Streams every ambiguity class in trail order — the full-scan path
    /// equivalence tests and [`PagedDictionary::read_dictionary`] use.
    #[must_use]
    pub fn iter(&self) -> ClassIter<'_> {
        ClassIter {
            store: self,
            page: 0,
            at: 0,
            current: Vec::new(),
            done: self.header.index_pages == 0,
        }
    }

    /// Rehydrates the full in-RAM [`SignatureDictionary`] — the fleet
    /// export path. This materialises every class; use
    /// [`PagedDictionary::lookup`] for bounded-memory serving.
    ///
    /// # Errors
    ///
    /// As [`PagedDictionary::lookup`], plus [`StoreError::Repair`] if the
    /// parts no longer assemble (corruption the checksums cannot see).
    pub fn read_dictionary(&self) -> Result<SignatureDictionary, StoreError> {
        let classes = self.iter().collect::<Result<Vec<_>, _>>()?;
        let undetected = self.undetected()?;
        SignatureDictionary::from_parts(
            self.meta.scheme,
            self.meta.test_name.clone(),
            self.meta.config,
            self.meta.content,
            self.meta.misr.clone(),
            self.meta.fault_free.clone(),
            classes,
            undetected,
        )
        .map_err(StoreError::Repair)
    }

    /// First trail of an index page (page-relative index).
    fn first_trail(&self, pager: &mut Pager, page_index: u32) -> Result<Vec<u128>, StoreError> {
        let page = pager.page(self.header.index_start() + page_index)?;
        let mut at = 0usize;
        let mut current = Vec::new();
        match self.decode_entry(&page, &mut at, &mut current, page_index)? {
            Some(_) => Ok(current),
            None => Err(StoreError::Corrupt(format!(
                "index page {page_index} holds no entries"
            ))),
        }
    }

    /// Decodes the entry at `*at`, advancing the cursor and rebuilding
    /// the trail into `current`. Returns `None` at end-of-page.
    fn decode_entry(
        &self,
        page: &[u8],
        at: &mut usize,
        current: &mut Vec<u128>,
        page_index: u32,
    ) -> Result<Option<IndexEntry>, StoreError> {
        let trail_words = self.header.trail_words as usize;
        let capacity = page.len();
        if *at + 2 > capacity {
            return Ok(None);
        }
        let prefix = u16::from_le_bytes(page[*at..*at + 2].try_into().expect("2 bytes"));
        if prefix == END_OF_PAGE {
            return Ok(None);
        }
        if *at + ENTRY_FIXED > capacity {
            // A zeroed tail decodes as prefix 0 / suffix 0 — only valid
            // as an entry when a real entry fits; anything else is
            // structural corruption unless it is the zero padding of the
            // final partial page.
            return Ok(None);
        }
        let suffix = usize::from(u16::from_le_bytes(
            page[*at + 2..*at + 4].try_into().expect("2 bytes"),
        ));
        let prefix = usize::from(prefix);
        if prefix + suffix != trail_words {
            // The zero padding after the last entry of a page reads as
            // prefix 0 + suffix 0; a dictionary trail always has at least
            // one signature, so this cleanly marks end-of-entries.
            if prefix == 0 && suffix == 0 {
                return Ok(None);
            }
            return Err(StoreError::Corrupt(format!(
                "index page {page_index}: entry prefix {prefix} + suffix {suffix} != trail \
                 length {trail_words}"
            )));
        }
        if *at == 0 && prefix != 0 {
            return Err(StoreError::Corrupt(format!(
                "index page {page_index}: first entry carries prefix {prefix}"
            )));
        }
        if prefix > current.len() {
            return Err(StoreError::Corrupt(format!(
                "index page {page_index}: entry prefix {prefix} exceeds the reconstructed trail"
            )));
        }
        let suffix_bytes = suffix * TRAIL_WORD_BYTES;
        if *at + ENTRY_FIXED + suffix_bytes > capacity {
            return Err(StoreError::Corrupt(format!(
                "index page {page_index}: entry suffix runs past the page"
            )));
        }
        let injections = u32::from_le_bytes(page[*at + 4..*at + 8].try_into().expect("4 bytes"));
        let handle_page = u32::from_le_bytes(page[*at + 8..*at + 12].try_into().expect("4 bytes"));
        let handle_offset =
            u32::from_le_bytes(page[*at + 12..*at + 16].try_into().expect("4 bytes"));
        current.truncate(prefix);
        let mut word_at = *at + ENTRY_FIXED;
        for _ in 0..suffix {
            current.push(u128::from_le_bytes(
                page[word_at..word_at + TRAIL_WORD_BYTES]
                    .try_into()
                    .expect("16 bytes"),
            ));
            word_at += TRAIL_WORD_BYTES;
        }
        *at = word_at;
        Ok(Some(IndexEntry {
            injections,
            handle_page,
            handle_offset,
        }))
    }

    /// Reads `len` payload bytes from the linear payload stream starting
    /// at `pos` (records may span pages).
    fn read_payload(&self, pager: &mut Pager, pos: u64, len: usize) -> Result<Vec<u8>, StoreError> {
        let capacity = self.header.capacity() as u64;
        if pos + len as u64 > self.header.payload_bytes {
            return Err(StoreError::Corrupt(format!(
                "payload read of {len} bytes at {pos} runs past the {}-byte payload region",
                self.header.payload_bytes
            )));
        }
        let mut out = Vec::with_capacity(len);
        let mut pos = pos;
        let mut remaining = len;
        while remaining > 0 {
            let page_index = u32::try_from(pos / capacity)
                .map_err(|_| StoreError::Corrupt("payload position exceeds u32 pages".into()))?;
            let offset = (pos % capacity) as usize;
            let page = pager.page(self.header.payload_start() + page_index)?;
            let take = remaining.min(page.len() - offset);
            out.extend_from_slice(&page[offset..offset + take]);
            pos += take as u64;
            remaining -= take;
        }
        Ok(out)
    }

    /// Reads the wire record at linear payload position `pos`.
    fn read_record<T: for<'de> Deserialize<'de>>(
        &self,
        pager: &mut Pager,
        pos: u64,
    ) -> Result<T, StoreError> {
        let len_bytes = self.read_payload(pager, pos, 4)?;
        let len = u32::from_le_bytes(len_bytes.as_slice().try_into().expect("4 bytes")) as usize;
        let bytes = self.read_payload(pager, pos + 4, len)?;
        Ok(wire::from_bytes(&bytes)?)
    }

    fn read_injections(
        &self,
        pager: &mut Pager,
        entry: IndexEntry,
        page_index: u32,
    ) -> Result<Vec<Vec<Fault>>, StoreError> {
        let capacity = self.header.capacity() as u64;
        let pos = u64::from(entry.handle_page) * capacity + u64::from(entry.handle_offset);
        let injections: Vec<Vec<Fault>> = self.read_record(pager, pos)?;
        if injections.len() != entry.injections as usize {
            return Err(StoreError::Corrupt(format!(
                "index page {page_index}: entry promises {} injections, payload holds {}",
                entry.injections,
                injections.len()
            )));
        }
        Ok(injections)
    }
}

#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    injections: u32,
    handle_page: u32,
    handle_offset: u32,
}

/// Streaming iterator over every class of a [`PagedDictionary`], in
/// trail order.
#[derive(Debug)]
pub struct ClassIter<'a> {
    store: &'a PagedDictionary,
    page: u32,
    at: usize,
    current: Vec<u128>,
    done: bool,
}

impl Iterator for ClassIter<'_> {
    type Item = Result<AmbiguityClass, StoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let width = self.store.header.width as usize;
        loop {
            let mut pager = self.store.lock_pager();
            let page = match pager.page(self.store.header.index_start() + self.page) {
                Ok(page) => page,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            };
            match self
                .store
                .decode_entry(&page, &mut self.at, &mut self.current, self.page)
            {
                Ok(Some(entry)) => {
                    let injections = match self.store.read_injections(&mut pager, entry, self.page)
                    {
                        Ok(injections) => injections,
                        Err(e) => {
                            self.done = true;
                            return Some(Err(e));
                        }
                    };
                    let signatures = match self
                        .current
                        .iter()
                        .map(|&bits| Word::from_bits(bits, width))
                        .collect::<Result<Vec<_>, _>>()
                    {
                        Ok(words) => words,
                        Err(e) => {
                            self.done = true;
                            return Some(Err(StoreError::Corrupt(format!(
                                "stored trail word: {e}"
                            ))));
                        }
                    };
                    return Some(Ok(AmbiguityClass {
                        trail: SignatureTrail::new(signatures),
                        injections,
                    }));
                }
                Ok(None) => {
                    self.page += 1;
                    self.at = 0;
                    self.current.clear();
                    if self.page >= self.store.header.index_pages {
                        self.done = true;
                        return None;
                    }
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

impl TrailLookup for PagedDictionary {
    fn scheme(&self) -> SchemeId {
        self.meta.scheme
    }

    fn test_name(&self) -> &str {
        &self.meta.test_name
    }

    fn config(&self) -> MemoryConfig {
        self.meta.config
    }

    fn content(&self) -> ContentPolicy {
        self.meta.content
    }

    fn misr_template(&self) -> &Misr {
        &self.meta.misr
    }

    fn reference_trail(&self) -> &SignatureTrail {
        &self.meta.fault_free
    }

    fn find(&self, trail: &SignatureTrail) -> Result<Option<AmbiguityClass>, RepairError> {
        self.lookup(trail).map_err(StoreError::into_lookup_error)
    }

    fn ambiguity_stats(&self) -> AmbiguityStats {
        AmbiguityStats {
            indexed: self.header.indexed as usize,
            classes: self.header.entries as usize,
            max_class_size: self.header.max_class_size as usize,
            distinguishable: self.header.distinguishable as usize,
            undetected: self.header.undetected as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use twm_core::scheme::SchemeRegistry;
    use twm_march::algorithms::march_c_minus;
    use twm_repair::localise_trail;

    fn engine(words: usize, width: usize) -> (CoverageEngine, Vec<Fault>) {
        let config = MemoryConfig::new(words, width).unwrap();
        let registry = SchemeRegistry::all(width).unwrap();
        let engine = CoverageEngine::for_scheme(
            registry.get(SchemeId::TwmTa).unwrap(),
            &march_c_minus(),
            config,
        )
        .unwrap()
        .content(ContentPolicy::Random { seed: 11 })
        .build()
        .unwrap();
        let universe = twm_coverage::UniverseBuilder::new(config)
            .stuck_at()
            .transition()
            .build();
        (engine, universe)
    }

    fn dictionary(words: usize, width: usize, samples: usize) -> SignatureDictionary {
        let (engine, universe) = engine(words, width);
        let options = DictionaryOptions {
            multi_fault_samples: samples,
            ..DictionaryOptions::default()
        };
        SignatureDictionary::build(&engine, &universe, &options).unwrap()
    }

    fn temp_store(tag: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "twm-paged-test-{}-{tag}.twmstore",
            std::process::id()
        ));
        path
    }

    #[test]
    fn round_trips_through_a_many_page_file() {
        let dictionary = dictionary(8, 4, 40);
        let path = temp_store("round-trip");
        // 256-byte pages force a multi-page index even for this small
        // universe; a 1 KiB budget forces eviction churn during the scan.
        let options = StoreOptions {
            page_size: 256,
            cache_budget: 1024,
        };
        PagedDictionary::write(&dictionary, &path, &options).unwrap();
        let store = PagedDictionary::open(&path, &options).unwrap();

        assert!(store.header.index_pages > 1, "test must span index pages");
        assert_eq!(store.classes(), dictionary.classes().len());
        assert_eq!(store.page_size(), 256);
        assert!(store.file_bytes() > 4 * 1024);
        assert_eq!(TrailLookup::ambiguity_stats(&store), dictionary.stats());
        assert_eq!(TrailLookup::scheme(&store), dictionary.scheme());
        assert_eq!(store.reference_trail(), dictionary.fault_free_trail());
        assert!(store.source().is_none());

        // Every class, bit-identical, via the streaming iterator...
        let streamed: Vec<AmbiguityClass> = store.iter().map(Result::unwrap).collect();
        assert_eq!(streamed.as_slice(), dictionary.classes());
        // ...and via point lookups (disk-served binary search).
        for class in dictionary.classes() {
            assert_eq!(store.lookup(&class.trail).unwrap().as_ref(), Some(class));
        }
        assert_eq!(
            store.undetected().unwrap().as_slice(),
            dictionary.undetected()
        );
        assert_eq!(store.read_dictionary().unwrap(), dictionary);
        let metrics = store.cache_metrics();
        assert!(metrics.evictions > 0, "budget must have forced evictions");
        assert!(metrics.hits > 0);

        // Misses stay misses — including wrong-shape trails.
        let absent = SignatureTrail::new(vec![Word::ones(4); dictionary.fault_free_trail().len()]);
        if dictionary.lookup(&absent).is_none() {
            assert_eq!(store.lookup(&absent).unwrap(), None);
        }
        let short = SignatureTrail::new(vec![Word::zeros(4)]);
        assert_eq!(store.lookup(&short).unwrap(), None);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn build_to_disk_matches_the_in_ram_build() {
        let (engine, universe) = engine(6, 4);
        let options = DictionaryOptions::default();
        let in_ram = SignatureDictionary::build(&engine, &universe, &options).unwrap();
        let path = temp_store("build-to-disk");
        let store = PagedDictionary::build_to_disk(
            &engine,
            &universe,
            &options,
            &path,
            &StoreOptions {
                page_size: 256,
                cache_budget: 2048,
            },
        )
        .unwrap();
        assert_eq!(store.read_dictionary().unwrap(), in_ram);
        assert_eq!(store.fingerprint(), fnv64(in_ram.test_name().as_bytes()));

        // The paged backend plugs into the same diagnosis front end.
        for class in in_ram.classes().iter().take(8) {
            let paged = localise_trail(&store, &class.trail).unwrap();
            let resident = localise_trail(&in_ram, &class.trail).unwrap();
            assert_eq!(paged, resident);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn write_with_source_records_the_fleet_fingerprint() {
        let dictionary = dictionary(6, 4, 0);
        let path = temp_store("with-source");
        let source = march_c_minus();
        PagedDictionary::write_with_source(
            &dictionary,
            Some(&source),
            &path,
            &StoreOptions::default(),
        )
        .unwrap();
        let store = PagedDictionary::open(&path, &StoreOptions::default()).unwrap();
        assert_eq!(store.source(), Some(&source));
        assert_eq!(
            store.fingerprint(),
            fnv64(source.to_string().as_bytes()),
            "spill fingerprint must match the fleet TestFingerprint"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unsorted_class_streams_are_rejected_and_cleaned_up() {
        let dictionary = dictionary(6, 4, 0);
        let path = temp_store("unsorted");
        let meta = StoreMeta {
            scheme: dictionary.scheme(),
            test_name: dictionary.test_name().to_string(),
            fingerprint: 0,
            config: dictionary.config(),
            content: dictionary.content(),
            misr: dictionary.misr().clone(),
            fault_free: dictionary.fault_free_trail().clone(),
            source: None,
        };
        let mut reversed: Vec<AmbiguityClass> = dictionary.classes().to_vec();
        reversed.reverse();
        let err = write_store(&path, 256, &meta, &[], reversed).unwrap_err();
        assert!(matches!(err, StoreError::UnsortedClasses));
        assert!(!path.exists(), "failed writes must not leave partial files");
    }

    #[test]
    fn opening_garbage_is_a_typed_error() {
        let path = temp_store("garbage");
        std::fs::write(&path, b"definitely not a store file, but long enough").unwrap();
        assert!(matches!(
            PagedDictionary::open(&path, &StoreOptions::default()),
            Err(StoreError::NotAStore)
        ));
        std::fs::write(&path, b"short").unwrap();
        assert!(matches!(
            PagedDictionary::open(&path, &StoreOptions::default()),
            Err(StoreError::NotAStore)
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn page_size_validation_is_typed() {
        let dictionary = dictionary(6, 4, 0);
        let path = temp_store("bad-page");
        let err = PagedDictionary::write(
            &dictionary,
            &path,
            &StoreOptions {
                page_size: 64,
                cache_budget: 1024,
            },
        )
        .unwrap_err();
        assert!(matches!(err, StoreError::InvalidOptions(_)));
    }
}
