//! The [`Pager`]: checksum-verified page reads behind a bounded LRU
//! cache.
//!
//! Lookups against a paged dictionary touch a handful of index and
//! payload pages; the pager keeps the hot ones resident under a
//! configurable **byte budget** and evicts least-recently-used pages
//! beyond it, so serving memory is bounded by the budget — not by the
//! dictionary size. [`PageCacheMetrics`] mirrors the fleet runtime
//! cache's hit/miss/eviction counters so deployments can size the budget
//! from observed hit rates.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Serialize};
use twm_obs::Counter;

use crate::format::{verify_page, CHECKSUM_LEN};
use crate::StoreError;

/// Process-wide page-cache counters in the [`twm_obs::global`]
/// registry, mirroring every pager instance — the scrapeable side of
/// the per-instance [`PageCacheMetrics`] snapshots.
struct StoreObs {
    reads: Counter,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    checksum_failures: Counter,
}

fn store_obs() -> &'static StoreObs {
    static OBS: OnceLock<StoreObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let registry = twm_obs::global();
        StoreObs {
            reads: registry.counter("twm_store_page_reads_total", &[]),
            hits: registry.counter("twm_store_page_hits_total", &[]),
            misses: registry.counter("twm_store_page_misses_total", &[]),
            evictions: registry.counter("twm_store_page_evictions_total", &[]),
            checksum_failures: registry.counter("twm_store_checksum_failures_total", &[]),
        }
    })
}

/// Hit/miss/eviction counters of a page cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageCacheMetrics {
    /// Page requests served from the cache.
    pub hits: u64,
    /// Page requests that went to disk.
    pub misses: u64,
    /// Pages evicted to stay under the byte budget.
    pub evictions: u64,
}

impl PageCacheMetrics {
    /// Fraction of requests served from the cache (1.0 when idle).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct CachedPage {
    stamp: u64,
    data: Arc<[u8]>,
}

/// Per-instance [`twm_obs::Counter`]s behind [`Pager::metrics`] —
/// the `PageCacheMetrics` struct is now a *snapshot* of these, so the
/// counters live on the observability registry's atomic primitives
/// while every existing accessor keeps working.
#[derive(Debug, Default)]
struct PagerCounters {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl PagerCounters {
    fn snapshot(&self) -> PageCacheMetrics {
        PageCacheMetrics {
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
        }
    }
}

/// Checksum-verified page reads over one store file, LRU-cached under a
/// byte budget. See the [module docs](self).
pub struct Pager {
    file: File,
    page_size: usize,
    pages: u32,
    budget: usize,
    clock: u64,
    cached_bytes: usize,
    cache: BTreeMap<u32, CachedPage>,
    metrics: PagerCounters,
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pager")
            .field("page_size", &self.page_size)
            .field("pages", &self.pages)
            .field("budget", &self.budget)
            .field("cached", &self.cache.len())
            .field("metrics", &self.metrics.snapshot())
            .finish_non_exhaustive()
    }
}

impl Pager {
    /// Wraps an open store file.
    ///
    /// `pages` is the total page count the header promises; reads beyond
    /// it are structural corruption, not I/O errors.
    #[must_use]
    pub fn new(file: File, page_size: usize, pages: u32, budget: usize) -> Self {
        Self {
            file,
            page_size,
            pages,
            budget,
            clock: 0,
            cached_bytes: 0,
            cache: BTreeMap::new(),
            metrics: PagerCounters::default(),
        }
    }

    /// The cache's byte budget.
    #[must_use]
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// A snapshot of the cache counters so far. The counters live on
    /// [`twm_obs`] atomics (mirrored into the global registry as
    /// `twm_store_page_*_total`); this accessor is the same thin
    /// per-instance view callers have always had.
    #[must_use]
    pub fn metrics(&self) -> PageCacheMetrics {
        self.metrics.snapshot()
    }

    /// Bytes currently held by cached pages.
    #[must_use]
    pub fn cached_bytes(&self) -> usize {
        self.cached_bytes
    }

    /// Fetches a page, checksum verified, from cache or disk.
    ///
    /// The returned slice is the page's **usable body** (checksum
    /// stripped), shared with the cache.
    ///
    /// # Errors
    ///
    /// * [`StoreError::Corrupt`] for a page beyond the header's count.
    /// * [`StoreError::Truncated`] when the file ends inside the page.
    /// * [`StoreError::ChecksumMismatch`] when its checksum fails.
    /// * [`StoreError::Io`] for other I/O failures.
    pub fn page(&mut self, index: u32) -> Result<Arc<[u8]>, StoreError> {
        if index >= self.pages {
            return Err(StoreError::Corrupt(format!(
                "page {index} beyond the file's {} pages",
                self.pages
            )));
        }
        self.clock += 1;
        let obs = store_obs();
        obs.reads.incr();
        if let Some(cached) = self.cache.get_mut(&index) {
            cached.stamp = self.clock;
            self.metrics.hits.incr();
            obs.hits.incr();
            return Ok(Arc::clone(&cached.data));
        }
        self.metrics.misses.incr();
        obs.misses.incr();

        let mut page = vec![0u8; self.page_size];
        self.file
            .seek(SeekFrom::Start(index as u64 * self.page_size as u64))?;
        self.file.read_exact(&mut page).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                StoreError::Truncated { page: index }
            } else {
                StoreError::Io(e)
            }
        })?;
        if let Err(error) = verify_page(&page, index) {
            obs.checksum_failures.incr();
            return Err(error);
        }
        page.truncate(self.page_size - CHECKSUM_LEN);
        let data: Arc<[u8]> = page.into();

        // Cache only when the budget fits at least one page; evict LRU
        // pages until this one fits.
        if self.page_size <= self.budget {
            while self.cached_bytes + self.page_size > self.budget {
                let Some((&oldest, _)) = self.cache.iter().min_by_key(|(_, page)| page.stamp)
                else {
                    break;
                };
                self.cache.remove(&oldest);
                self.cached_bytes -= self.page_size;
                self.metrics.evictions.incr();
                obs.evictions.incr();
            }
            self.cache.insert(
                index,
                CachedPage {
                    stamp: self.clock,
                    data: Arc::clone(&data),
                },
            );
            self.cached_bytes += self.page_size;
        }
        Ok(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::seal_page;
    use std::io::Write;

    fn store_file(pages: u32, page_size: usize) -> File {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "twm-pager-test-{}-{pages}x{page_size}",
            std::process::id()
        ));
        let mut file = File::create(&path).unwrap();
        for index in 0..pages {
            let mut page = vec![index as u8; page_size];
            seal_page(&mut page);
            file.write_all(&page).unwrap();
        }
        drop(file);
        let file = File::open(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        file
    }

    #[test]
    fn pages_round_trip_with_lru_eviction() {
        let mut pager = Pager::new(store_file(4, 128), 128, 4, 256); // budget: 2 pages
        assert_eq!(pager.page(0).unwrap()[0], 0);
        assert_eq!(pager.page(1).unwrap()[0], 1);
        assert_eq!(pager.page(0).unwrap()[0], 0); // hit, freshens 0
        assert_eq!(pager.page(2).unwrap()[0], 2); // evicts 1 (LRU)
        assert_eq!(pager.page(0).unwrap()[0], 0); // still cached
        let metrics = pager.metrics();
        assert_eq!(metrics.hits, 2);
        assert_eq!(metrics.misses, 3);
        assert_eq!(metrics.evictions, 1);
        assert!(metrics.hit_rate() > 0.3 && metrics.hit_rate() < 0.5);
        assert_eq!(pager.cached_bytes(), 256);
        // Page 1 was evicted: fetching it again is a miss + eviction.
        assert_eq!(pager.page(1).unwrap()[0], 1);
        assert_eq!(pager.metrics().misses, 4);
    }

    #[test]
    fn a_budget_below_one_page_caches_nothing() {
        let mut pager = Pager::new(store_file(2, 128), 128, 2, 64);
        pager.page(0).unwrap();
        pager.page(0).unwrap();
        assert_eq!(pager.metrics().hits, 0);
        assert_eq!(pager.metrics().misses, 2);
        assert_eq!(pager.cached_bytes(), 0);
    }

    #[test]
    fn out_of_range_and_truncation_are_typed() {
        let mut pager = Pager::new(store_file(2, 128), 128, 5, usize::MAX);
        assert!(matches!(pager.page(9), Err(StoreError::Corrupt(_))));
        // Header promises 5 pages but the file holds 2.
        assert!(matches!(
            pager.page(3),
            Err(StoreError::Truncated { page: 3 })
        ));
    }
}
