//! The wire format: a compact, self-describing binary encoding of the
//! serde data model, streamed over [`io::Read`] / [`io::Write`].
//!
//! Fleet requests, persisted dictionary shards and the paged store's
//! metadata all travel as [`serde::Value`] trees:
//!
//! | tag | payload |
//! |----:|---------|
//! | `0` | unit — empty |
//! | `1` | bool — one byte, `0`/`1` |
//! | `2` | unsigned — 16 bytes LE |
//! | `3` | signed — 16 bytes LE (two's complement) |
//! | `4` | float — 8 bytes, IEEE-754 bit pattern LE |
//! | `5` | string — `u64` LE byte length + UTF-8 bytes |
//! | `6` | sequence — `u64` LE element count + elements |
//! | `7` | map — `u64` LE entry count + key/value pairs |
//! | `8` | record — `u64` LE field count + (name string, value) pairs |
//! | `9` | variant — name string + payload value |
//!
//! Decoding is strict: strings must be valid UTF-8, unknown tags are
//! rejected, nesting depth is capped, and [`from_bytes`] rejects trailing
//! bytes. Length prefixes cannot drive runaway allocations: collections
//! grow incrementally as their elements actually decode, and string/byte
//! reads go through [`io::Read::take`], so a corrupt length fails on EOF
//! after reading at most the real input. The module is deliberately the
//! only place that knows the byte layout — when the build moves to
//! crates.io this is the seam to swap for `bincode`/`postcard` over real
//! serde.
//!
//! The streaming entry points are [`write_to`] / [`read_from`];
//! [`to_bytes`] / [`from_bytes`] are thin in-RAM wrappers over them
//! (`twm-fleet` re-exports those wrappers for its message framing).

use std::fmt;
use std::io::{self, Read, Write};

use serde::{Deserialize, Serialize, Value};

const TAG_UNIT: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_UINT: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_FLOAT: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_SEQ: u8 = 6;
const TAG_MAP: u8 = 7;
const TAG_RECORD: u8 = 8;
const TAG_VARIANT: u8 = 9;

/// Value trees deeper than this are rejected — far above anything the
/// stack's data model produces, low enough that a crafted input cannot
/// overflow the decoder's stack.
const MAX_DEPTH: usize = 256;

/// Collection allocations are pre-reserved at most this many elements;
/// beyond it they grow as elements actually decode.
const MAX_PREALLOC: usize = 4096;

/// Errors of the wire codec.
#[derive(Debug)]
#[non_exhaustive]
pub enum WireError {
    /// The underlying reader or writer failed.
    Io(io::Error),
    /// The byte stream is not a well-formed wire value (truncation,
    /// unknown tag, invalid UTF-8, trailing bytes, excessive nesting).
    Malformed(String),
    /// The decoded value tree does not match the target type's shape.
    Model(String),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Malformed(message) => write!(f, "malformed wire payload: {message}"),
            WireError::Model(message) => {
                write!(f, "wire value does not fit target type: {message}")
            }
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        // EOF mid-value is a property of the payload, not the transport.
        if e.kind() == io::ErrorKind::UnexpectedEof {
            WireError::Malformed("payload truncated mid-value".to_string())
        } else {
            WireError::Io(e)
        }
    }
}

/// Encodes a value into the wire format, streaming it to `writer`.
///
/// # Errors
///
/// [`WireError::Io`] when the writer fails.
pub fn write_to<W: Write + ?Sized, T: Serialize + ?Sized>(
    writer: &mut W,
    value: &T,
) -> Result<(), WireError> {
    encode(&serde::to_value(value), writer).map_err(WireError::from)
}

/// Decodes a value from the wire format, streaming it from `reader`.
///
/// Reads exactly one value and leaves the reader positioned after it —
/// the framing caller decides whether trailing bytes are acceptable
/// (length-prefixed transports pass an [`io::Read::take`] adapter or use
/// [`from_bytes`]).
///
/// # Errors
///
/// [`WireError::Malformed`] on a truncated or malformed payload,
/// [`WireError::Model`] if the decoded tree does not match `T`'s shape,
/// [`WireError::Io`] when the reader itself fails.
pub fn read_from<R: Read + ?Sized, T: for<'de> Deserialize<'de>>(
    reader: &mut R,
) -> Result<T, WireError> {
    let value = decode(reader, 0)?;
    serde::from_value(&value).map_err(|e| WireError::Model(e.to_string()))
}

/// Encodes a value into an in-RAM wire buffer.
#[must_use]
pub fn to_bytes<T: Serialize + ?Sized>(value: &T) -> Vec<u8> {
    let mut bytes = Vec::new();
    encode(&serde::to_value(value), &mut bytes).expect("writing to a Vec cannot fail");
    bytes
}

/// Decodes a value from an in-RAM wire buffer, rejecting trailing bytes.
///
/// # Errors
///
/// As [`read_from`], plus [`WireError::Malformed`] for trailing bytes.
pub fn from_bytes<T: for<'de> Deserialize<'de>>(bytes: &[u8]) -> Result<T, WireError> {
    let mut reader = bytes;
    let value = decode(&mut reader, 0)?;
    if !reader.is_empty() {
        return Err(WireError::Malformed(format!(
            "{} trailing bytes after value",
            reader.len()
        )));
    }
    serde::from_value(&value).map_err(|e| WireError::Model(e.to_string()))
}

fn encode<W: Write + ?Sized>(value: &Value, out: &mut W) -> io::Result<()> {
    match value {
        Value::Unit => out.write_all(&[TAG_UNIT]),
        Value::Bool(flag) => out.write_all(&[TAG_BOOL, u8::from(*flag)]),
        Value::UInt(number) => {
            out.write_all(&[TAG_UINT])?;
            out.write_all(&number.to_le_bytes())
        }
        Value::Int(number) => {
            out.write_all(&[TAG_INT])?;
            out.write_all(&number.to_le_bytes())
        }
        Value::Float(number) => {
            out.write_all(&[TAG_FLOAT])?;
            out.write_all(&number.to_bits().to_le_bytes())
        }
        Value::Str(text) => {
            out.write_all(&[TAG_STR])?;
            encode_str(text, out)
        }
        Value::Seq(items) => {
            out.write_all(&[TAG_SEQ])?;
            encode_len(items.len(), out)?;
            for item in items {
                encode(item, out)?;
            }
            Ok(())
        }
        Value::Map(entries) => {
            out.write_all(&[TAG_MAP])?;
            encode_len(entries.len(), out)?;
            for (key, entry) in entries {
                encode(key, out)?;
                encode(entry, out)?;
            }
            Ok(())
        }
        Value::Record(fields) => {
            out.write_all(&[TAG_RECORD])?;
            encode_len(fields.len(), out)?;
            for (name, field) in fields {
                encode_str(name, out)?;
                encode(field, out)?;
            }
            Ok(())
        }
        Value::Variant(name, payload) => {
            out.write_all(&[TAG_VARIANT])?;
            encode_str(name, out)?;
            encode(payload, out)
        }
    }
}

fn encode_len<W: Write + ?Sized>(len: usize, out: &mut W) -> io::Result<()> {
    out.write_all(&(len as u64).to_le_bytes())
}

fn encode_str<W: Write + ?Sized>(text: &str, out: &mut W) -> io::Result<()> {
    encode_len(text.len(), out)?;
    out.write_all(text.as_bytes())
}

fn read_array<R: Read + ?Sized, const N: usize>(reader: &mut R) -> Result<[u8; N], WireError> {
    let mut bytes = [0u8; N];
    reader.read_exact(&mut bytes)?;
    Ok(bytes)
}

fn read_len<R: Read + ?Sized>(reader: &mut R) -> Result<usize, WireError> {
    let raw = u64::from_le_bytes(read_array::<R, 8>(reader)?);
    usize::try_from(raw)
        .map_err(|_| WireError::Malformed(format!("length {raw} exceeds the address space")))
}

fn read_str<R: Read + ?Sized>(reader: &mut R) -> Result<String, WireError> {
    let len = read_len(reader)?;
    // Grow incrementally through a bounded reader: a corrupt length fails
    // on EOF after at most the real input, instead of pre-allocating `len`.
    let mut bytes = Vec::with_capacity(len.min(MAX_PREALLOC));
    let consumed = reader.take(len as u64).read_to_end(&mut bytes)?;
    if consumed < len {
        return Err(WireError::Malformed(format!(
            "string of {len} bytes truncated after {consumed}"
        )));
    }
    String::from_utf8(bytes).map_err(|_| WireError::Malformed("string is not valid UTF-8".into()))
}

fn decode<R: Read + ?Sized>(reader: &mut R, depth: usize) -> Result<Value, WireError> {
    if depth > MAX_DEPTH {
        return Err(WireError::Malformed(format!(
            "value nesting exceeds {MAX_DEPTH} levels"
        )));
    }
    let tag = read_array::<R, 1>(reader)?[0];
    match tag {
        TAG_UNIT => Ok(Value::Unit),
        TAG_BOOL => match read_array::<R, 1>(reader)?[0] {
            0 => Ok(Value::Bool(false)),
            1 => Ok(Value::Bool(true)),
            other => Err(WireError::Malformed(format!(
                "invalid bool byte {other:#04x}"
            ))),
        },
        TAG_UINT => Ok(Value::UInt(u128::from_le_bytes(read_array::<R, 16>(
            reader,
        )?))),
        TAG_INT => Ok(Value::Int(i128::from_le_bytes(read_array::<R, 16>(
            reader,
        )?))),
        TAG_FLOAT => Ok(Value::Float(f64::from_bits(u64::from_le_bytes(
            read_array::<R, 8>(reader)?,
        )))),
        TAG_STR => Ok(Value::Str(read_str(reader)?)),
        TAG_SEQ => {
            let len = read_len(reader)?;
            let mut items = Vec::with_capacity(len.min(MAX_PREALLOC));
            for _ in 0..len {
                items.push(decode(reader, depth + 1)?);
            }
            Ok(Value::Seq(items))
        }
        TAG_MAP => {
            let len = read_len(reader)?;
            let mut entries = Vec::with_capacity(len.min(MAX_PREALLOC));
            for _ in 0..len {
                let key = decode(reader, depth + 1)?;
                let entry = decode(reader, depth + 1)?;
                entries.push((key, entry));
            }
            Ok(Value::Map(entries))
        }
        TAG_RECORD => {
            let len = read_len(reader)?;
            let mut fields = Vec::with_capacity(len.min(MAX_PREALLOC));
            for _ in 0..len {
                let name = read_str(reader)?;
                let field = decode(reader, depth + 1)?;
                fields.push((name, field));
            }
            Ok(Value::Record(fields))
        }
        TAG_VARIANT => {
            let name = read_str(reader)?;
            let payload = decode(reader, depth + 1)?;
            Ok(Value::Variant(name, Box::new(payload)))
        }
        other => Err(WireError::Malformed(format!(
            "unknown value tag {other:#04x}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(value: &Value) {
        let mut bytes = Vec::new();
        encode(value, &mut bytes).unwrap();
        let mut reader = bytes.as_slice();
        let back = decode(&mut reader, 0).unwrap();
        assert!(reader.is_empty());
        assert_eq!(&back, value);
    }

    #[test]
    fn every_value_shape_round_trips() {
        round_trip(&Value::Unit);
        round_trip(&Value::Bool(true));
        round_trip(&Value::UInt(u128::MAX));
        round_trip(&Value::Int(i128::MIN));
        round_trip(&Value::Float(-0.5));
        round_trip(&Value::Str("märz".to_string()));
        round_trip(&Value::Seq(vec![Value::UInt(1), Value::Bool(false)]));
        round_trip(&Value::Map(vec![(Value::Str("k".into()), Value::UInt(7))]));
        round_trip(&Value::Record(vec![("field".to_string(), Value::Unit)]));
        round_trip(&Value::Variant(
            "Some".to_string(),
            Box::new(Value::UInt(3)),
        ));
    }

    #[test]
    fn typed_round_trip() {
        let value: Vec<(String, Option<u32>)> =
            vec![("a".to_string(), Some(7)), ("b".to_string(), None)];
        let bytes = to_bytes(&value);
        let back: Vec<(String, Option<u32>)> = from_bytes(&bytes).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn streaming_round_trip_over_io() {
        let value: Vec<(String, Vec<u64>)> = (0..50)
            .map(|i| (format!("entry-{i}"), (0..i).collect()))
            .collect();
        let mut buffer = Vec::new();
        write_to(&mut buffer, &value).unwrap();
        assert_eq!(buffer, to_bytes(&value));
        // Read through a one-byte-at-a-time reader to exercise partial
        // reads on every fixed-size field.
        struct TrickleReader<'a>(&'a [u8]);
        impl Read for TrickleReader<'_> {
            fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
                if self.0.is_empty() || out.is_empty() {
                    return Ok(0);
                }
                out[0] = self.0[0];
                self.0 = &self.0[1..];
                Ok(1)
            }
        }
        let back: Vec<(String, Vec<u64>)> = read_from(&mut TrickleReader(&buffer)).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn read_from_leaves_reader_after_the_value() {
        let mut buffer = to_bytes(&3u32);
        buffer.extend_from_slice(&to_bytes(&"next".to_string()));
        let mut reader = buffer.as_slice();
        let first: u32 = read_from(&mut reader).unwrap();
        let second: String = read_from(&mut reader).unwrap();
        assert_eq!(first, 3);
        assert_eq!(second, "next");
        assert!(reader.is_empty());
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        // Truncated integer payload.
        assert!(from_bytes::<u32>(&[TAG_UINT, 1, 2]).is_err());
        // Unknown tag.
        assert!(from_bytes::<u32>(&[0xFF]).is_err());
        // Oversized length prefix cannot allocate.
        let mut huge = vec![TAG_SEQ];
        huge.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(from_bytes::<Vec<u32>>(&huge).is_err());
        // Oversized string length fails without a giant allocation.
        let mut text = vec![TAG_STR];
        text.extend_from_slice(&u64::MAX.to_le_bytes());
        text.extend_from_slice(b"abc");
        assert!(from_bytes::<String>(&text).is_err());
        // Trailing bytes.
        let mut padded = to_bytes(&7u32);
        padded.push(0);
        assert!(from_bytes::<u32>(&padded).is_err());
        // Invalid bool byte.
        assert!(from_bytes::<bool>(&[TAG_BOOL, 2]).is_err());
        // A variant chain deeper than the cap is rejected, not a stack
        // overflow.
        let mut nested = Vec::new();
        for _ in 0..(MAX_DEPTH + 8) {
            nested.push(TAG_VARIANT);
            nested.extend_from_slice(&1u64.to_le_bytes());
            nested.push(b'v');
        }
        nested.push(TAG_UNIT);
        assert!(matches!(
            from_bytes::<u32>(&nested),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn shape_mismatches_are_model_errors() {
        let bytes = to_bytes(&"text".to_string());
        assert!(matches!(
            from_bytes::<u32>(&bytes),
            Err(WireError::Model(_))
        ));
    }
}
