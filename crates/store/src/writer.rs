//! The single-pass store writer: streams sorted ambiguity classes into a
//! paged file without materialising the dictionary.
//!
//! Index entries append to the final file as classes drain (their region
//! directly follows the metadata); payload records stream to a sibling
//! temp file because their region comes last and its page count is only
//! known at the end. Once the class stream is dry the temp bytes are
//! page-chunked and checksummed into the final file, and the header —
//! whose statistics fields accumulated during the drain — is rewritten
//! over the placeholder page 0. Peak memory is one page buffer plus one
//! class, whatever the dictionary size.

use std::ffi::OsString;
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use twm_repair::AmbiguityClass;

use crate::format::{
    pages_for, seal_page, Header, CHECKSUM_LEN, END_OF_PAGE, ENTRY_FIXED, MAX_PAGE_SIZE,
    MIN_PAGE_SIZE, TRAIL_WORD_BYTES,
};
use crate::paged::StoreMeta;
use crate::{wire, StoreError};

/// Longest count of equal leading words.
fn common_prefix(a: &[u128], b: &[u128]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

fn temp_payload_path(path: &Path) -> PathBuf {
    let mut name = path
        .file_name()
        .map_or_else(|| OsString::from("store"), OsString::from);
    name.push(".payload.tmp");
    path.with_file_name(name)
}

/// Validates a page size against the entry geometry it must hold.
pub(crate) fn validate_page_size(page_size: usize, trail_words: usize) -> Result<(), StoreError> {
    if !(MIN_PAGE_SIZE..=MAX_PAGE_SIZE).contains(&page_size) {
        return Err(StoreError::InvalidOptions(format!(
            "page size {page_size} outside [{MIN_PAGE_SIZE}, {MAX_PAGE_SIZE}]"
        )));
    }
    if trail_words >= usize::from(END_OF_PAGE) {
        return Err(StoreError::InvalidOptions(format!(
            "trail length {trail_words} exceeds the index entry format"
        )));
    }
    let full_entry = ENTRY_FIXED + trail_words * TRAIL_WORD_BYTES;
    let capacity = page_size - CHECKSUM_LEN;
    if full_entry > capacity {
        return Err(StoreError::InvalidOptions(format!(
            "page capacity {capacity} cannot hold one full index entry of {full_entry} bytes \
             (trail of {trail_words} words)"
        )));
    }
    Ok(())
}

/// Writes a complete store file at `path`. `classes` must yield
/// strictly trail-ascending classes whose trails share `meta`'s
/// fault-free shape — exactly what [`twm_repair::DictionaryStream`] and
/// [`twm_repair::SignatureDictionary::classes`] produce.
pub(crate) fn write_store<I>(
    path: &Path,
    page_size: usize,
    meta: &StoreMeta,
    undetected: &[Vec<twm_mem::Fault>],
    classes: I,
) -> Result<Header, StoreError>
where
    I: IntoIterator<Item = AmbiguityClass>,
{
    let trail_words = meta.fault_free.len();
    validate_page_size(page_size, trail_words)?;
    let temp = temp_payload_path(path);
    let result = write_store_inner(path, &temp, page_size, meta, undetected, classes);
    let _ = std::fs::remove_file(&temp);
    if result.is_err() {
        let _ = std::fs::remove_file(path);
    }
    result
}

fn write_store_inner<I>(
    path: &Path,
    temp: &Path,
    page_size: usize,
    meta: &StoreMeta,
    undetected: &[Vec<twm_mem::Fault>],
    classes: I,
) -> Result<Header, StoreError>
where
    I: IntoIterator<Item = AmbiguityClass>,
{
    let capacity = page_size - CHECKSUM_LEN;
    let trail_words = meta.fault_free.len();
    let width = meta.config.width();

    // Payload stream: length-prefixed wire records, undetected first (its
    // handle is implicitly position 0).
    // Read+write: the stream is read back for page-chunking at the end.
    let mut payload = BufWriter::new(
        std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(temp)?,
    );
    let mut payload_bytes: u64 = 0;
    let write_record = |payload: &mut BufWriter<File>,
                        payload_bytes: &mut u64,
                        bytes: &[u8]|
     -> Result<u64, StoreError> {
        let at = *payload_bytes;
        let len = u32::try_from(bytes.len()).map_err(|_| {
            StoreError::Corrupt(format!(
                "payload record of {} bytes exceeds u32",
                bytes.len()
            ))
        })?;
        payload.write_all(&len.to_le_bytes())?;
        payload.write_all(bytes)?;
        *payload_bytes += 4 + u64::from(len);
        Ok(at)
    };
    write_record(
        &mut payload,
        &mut payload_bytes,
        &wire::to_bytes(undetected),
    )?;

    // Final file: placeholder header, then the metadata region.
    let mut out = BufWriter::new(File::create(path)?);
    out.write_all(&vec![0u8; page_size])?;
    let meta_encoded = wire::to_bytes(meta);
    let meta_pages = pages_for(meta_encoded.len() as u64, capacity);
    let mut page = vec![0u8; page_size];
    for chunk in meta_encoded.chunks(capacity) {
        page.fill(0);
        page[..chunk.len()].copy_from_slice(chunk);
        seal_page(&mut page);
        out.write_all(&page)?;
    }

    // Index region, streamed: prefix-compressed entries, first entry of
    // every page full so pages are self-contained.
    let mut offset = 0usize;
    let mut index_pages = 0u32;
    let mut page_prev: Vec<u128> = Vec::new();
    let mut last_trail: Vec<u128> = Vec::new();
    let mut entries = 0u64;
    let mut indexed = 0u64;
    let mut max_class_size = 0u64;
    let mut distinguishable = 0u64;
    page.fill(0);
    for class in classes {
        let signatures = class.trail.signatures();
        if signatures.len() != trail_words {
            return Err(StoreError::Corrupt(format!(
                "class trail holds {} signatures, expected {trail_words}",
                signatures.len()
            )));
        }
        if signatures.iter().any(|word| word.width() != width) {
            return Err(StoreError::Corrupt(format!(
                "class trail carries a signature wider than {width} bits"
            )));
        }
        let words: Vec<u128> = signatures.iter().map(|word| word.to_bits()).collect();
        if entries > 0 && words <= last_trail {
            return Err(StoreError::UnsortedClasses);
        }

        let record_at = write_record(
            &mut payload,
            &mut payload_bytes,
            &wire::to_bytes(&class.injections),
        )?;
        let handle_page = u32::try_from(record_at / capacity as u64)
            .map_err(|_| StoreError::Corrupt("payload region exceeds u32 pages".into()))?;
        let handle_offset = (record_at % capacity as u64) as u32;
        let injections = u32::try_from(class.injections.len())
            .map_err(|_| StoreError::Corrupt("class injection count exceeds u32".into()))?;

        let mut prefix = if offset == 0 {
            0
        } else {
            common_prefix(&page_prev, &words)
        };
        let mut entry_len = ENTRY_FIXED + (trail_words - prefix) * TRAIL_WORD_BYTES;
        if offset + entry_len > capacity {
            // Seal this page (early-end sentinel if there is room) and
            // start a fresh one with a full entry.
            if offset + 2 <= capacity {
                page[offset..offset + 2].copy_from_slice(&END_OF_PAGE.to_le_bytes());
            }
            seal_page(&mut page);
            out.write_all(&page)?;
            index_pages += 1;
            page.fill(0);
            offset = 0;
            prefix = 0;
            entry_len = ENTRY_FIXED + trail_words * TRAIL_WORD_BYTES;
        }
        page[offset..offset + 2].copy_from_slice(&(prefix as u16).to_le_bytes());
        page[offset + 2..offset + 4]
            .copy_from_slice(&((trail_words - prefix) as u16).to_le_bytes());
        page[offset + 4..offset + 8].copy_from_slice(&injections.to_le_bytes());
        page[offset + 8..offset + 12].copy_from_slice(&handle_page.to_le_bytes());
        page[offset + 12..offset + 16].copy_from_slice(&handle_offset.to_le_bytes());
        let mut at = offset + ENTRY_FIXED;
        for &word in &words[prefix..] {
            page[at..at + TRAIL_WORD_BYTES].copy_from_slice(&word.to_le_bytes());
            at += TRAIL_WORD_BYTES;
        }
        offset += entry_len;

        entries += 1;
        indexed += u64::from(injections);
        max_class_size = max_class_size.max(u64::from(injections));
        if injections == 1 {
            distinguishable += 1;
        }
        page_prev = words.clone();
        last_trail = words;
    }
    if offset > 0 {
        if offset + 2 <= capacity {
            page[offset..offset + 2].copy_from_slice(&END_OF_PAGE.to_le_bytes());
        }
        seal_page(&mut page);
        out.write_all(&page)?;
        index_pages += 1;
    }

    // Payload region: page-chunk the temp stream into the final file.
    payload.flush()?;
    let mut payload_file = payload
        .into_inner()
        .map_err(|e| StoreError::Io(e.into_error()))?;
    payload_file.seek(SeekFrom::Start(0))?;
    let payload_pages = pages_for(payload_bytes, capacity);
    let mut reader = BufReader::new(payload_file);
    let mut remaining = payload_bytes;
    for _ in 0..payload_pages {
        page.fill(0);
        let take = (remaining as usize).min(capacity);
        reader.read_exact(&mut page[..take])?;
        remaining -= take as u64;
        seal_page(&mut page);
        out.write_all(&page)?;
    }

    // Rewrite the real header over the placeholder.
    let header = Header {
        page_size: page_size as u32,
        meta_bytes: meta_encoded.len() as u64,
        meta_pages,
        index_pages,
        payload_pages,
        entries,
        indexed,
        undetected: undetected.len() as u64,
        max_class_size,
        distinguishable,
        trail_words: trail_words as u32,
        width: width as u32,
        payload_bytes,
    };
    out.flush()?;
    let mut file = out
        .into_inner()
        .map_err(|e| StoreError::Io(e.into_error()))?;
    header.encode(&mut page);
    file.seek(SeekFrom::Start(0))?;
    file.write_all(&page)?;
    file.sync_all()?;
    Ok(header)
}
