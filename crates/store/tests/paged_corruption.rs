//! The corruption contract: a damaged store file — truncated, flipped,
//! re-versioned or outright foreign — always surfaces as a **typed**
//! [`StoreError`], never a panic and never a wrong answer.

use twm_core::scheme::{SchemeId, SchemeRegistry};
use twm_coverage::{ContentPolicy, CoverageEngine, UniverseBuilder};
use twm_march::algorithms::march_c_minus;
use twm_mem::MemoryConfig;
use twm_repair::{DictionaryOptions, SignatureDictionary};
use twm_store::{PagedDictionary, StoreError, StoreOptions};

const PAGE_SIZE: usize = 256;

fn options() -> StoreOptions {
    StoreOptions {
        page_size: PAGE_SIZE,
        cache_budget: 8 * PAGE_SIZE,
    }
}

fn dictionary() -> SignatureDictionary {
    let config = MemoryConfig::new(6, 4).unwrap();
    let registry = SchemeRegistry::all(4).unwrap();
    let engine = CoverageEngine::for_scheme(
        registry.get(SchemeId::TwmTa).unwrap(),
        &march_c_minus(),
        config,
    )
    .unwrap()
    .content(ContentPolicy::Random { seed: 3 })
    .build()
    .unwrap();
    let universe = UniverseBuilder::new(config).stuck_at().transition().build();
    SignatureDictionary::build(&engine, &universe, &DictionaryOptions::default()).unwrap()
}

fn store_bytes(dictionary: &SignatureDictionary, tag: &str) -> (std::path::PathBuf, Vec<u8>) {
    let path = std::env::temp_dir().join(format!(
        "twm-corruption-{}-{tag}.twmstore",
        std::process::id()
    ));
    PagedDictionary::write(dictionary, &path, &options()).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    (path, bytes)
}

/// Opens the file and, if that succeeds, exercises every read path:
/// point lookups for every class, the undetected record and a full
/// streaming scan. Every failure must arrive as a typed `StoreError`.
fn exercise(path: &std::path::Path, reference: &SignatureDictionary) -> Result<(), StoreError> {
    let paged = PagedDictionary::open(path, &options())?;
    for class in reference.classes() {
        if let Some(found) = paged.lookup(&class.trail)? {
            // Corruption may surface as an error, but a *successful*
            // lookup must never hand back a different class.
            assert_eq!(&found, class, "corrupt store returned a wrong class");
        }
    }
    paged.undetected()?;
    for class in paged.iter() {
        class?;
    }
    Ok(())
}

#[test]
fn truncated_files_are_typed_errors() {
    let dictionary = dictionary();
    let (path, bytes) = store_bytes(&dictionary, "truncate");
    // Cut at every page boundary and a handful of odd offsets.
    let mut cuts: Vec<usize> = (0..bytes.len()).step_by(PAGE_SIZE).collect();
    cuts.extend([1, 7, 15, PAGE_SIZE / 2, bytes.len() - 1]);
    for cut in cuts {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let error = exercise(&path, &dictionary).expect_err("truncated file must fail");
        assert!(
            matches!(
                error,
                StoreError::Truncated { .. } | StoreError::NotAStore | StoreError::Corrupt(_)
            ),
            "cut at {cut}: unexpected error {error:?}"
        );
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn every_flipped_byte_is_caught_or_harmless() {
    let dictionary = dictionary();
    let (path, bytes) = store_bytes(&dictionary, "flip");
    // Sweep a byte flip across the whole file (stride keeps the test
    // fast; the offset varies which byte of each page gets hit).
    for at in (0..bytes.len()).step_by(13) {
        let mut mutated = bytes.clone();
        mutated[at] ^= 0x40;
        std::fs::write(&path, &mutated).unwrap();
        match exercise(&path, &dictionary) {
            // Checksums catch the flip (or structure checks, for flips
            // the page survives): typed, never a panic.
            Err(
                StoreError::ChecksumMismatch { .. }
                | StoreError::Corrupt(_)
                | StoreError::Wire(_)
                | StoreError::NotAStore
                | StoreError::UnsupportedVersion { .. }
                | StoreError::Truncated { .. },
            ) => {}
            Err(other) => panic!("flip at {at}: unexpected error {other:?}"),
            // `exercise` itself asserts any successful lookup returned
            // the right class, so a clean pass here would mean the flip
            // landed in dead padding — with FNV-sealed pages it cannot.
            Ok(()) => panic!("flip at {at} went undetected"),
        }
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn foreign_versions_and_magics_are_typed() {
    let dictionary = dictionary();
    let (path, bytes) = store_bytes(&dictionary, "version");

    // Bump the format version (leaving the checksum stale is exactly
    // what a future-format file looks like to this build's probe).
    let mut versioned = bytes.clone();
    versioned[8..12].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&path, &versioned).unwrap();
    assert!(matches!(
        PagedDictionary::open(&path, &options()),
        Err(StoreError::UnsupportedVersion {
            found: 99,
            supported: twm_store::FORMAT_VERSION,
        })
    ));

    // Break the magic.
    let mut foreign = bytes.clone();
    foreign[0] = b'X';
    std::fs::write(&path, &foreign).unwrap();
    assert!(matches!(
        PagedDictionary::open(&path, &options()),
        Err(StoreError::NotAStore)
    ));

    // An empty file and a tiny file are "not a store", not a crash.
    std::fs::write(&path, b"").unwrap();
    assert!(matches!(
        PagedDictionary::open(&path, &options()),
        Err(StoreError::NotAStore)
    ));
    std::fs::remove_file(&path).unwrap();
}
