//! The acceptance pin for the paged backend: over random universes,
//! widths and content policies, a `PagedDictionary` whose file is at
//! least **4× the page-cache budget** answers every lookup — and every
//! `localise_trail` diagnosis — bit-identically to the in-RAM
//! `SignatureDictionary` it was written from.

use proptest::prelude::*;

use twm_core::scheme::{SchemeId, SchemeRegistry};
use twm_coverage::{ContentPolicy, CoverageEngine, UniverseBuilder};
use twm_march::algorithms::{march_c_minus, mats_plus};
use twm_mem::{MemoryConfig, Word};
use twm_repair::{
    localise_trail, localise_trail_normalised, DictionaryOptions, SignatureDictionary,
    SignatureTrail, TrailLookup,
};
use twm_store::{PagedDictionary, StoreOptions};

/// Small pages + a 2-page budget: even toy dictionaries overflow the
/// cache by the required factor, so lookups genuinely stream from disk.
/// The page must still hold one full index entry (16 fixed bytes +
/// 16 per trail word + the 8-byte seal), so it is sized per-case from
/// the dictionary's actual trail length.
fn store_options(trail_words: usize) -> StoreOptions {
    let entry = 16 + trail_words * 16 + 8;
    let page_size = entry.next_power_of_two().max(256);
    StoreOptions {
        page_size,
        cache_budget: 2 * page_size,
    }
}

fn build(
    words: usize,
    width: usize,
    scheme: SchemeId,
    content: ContentPolicy,
    samples: usize,
) -> SignatureDictionary {
    let config = MemoryConfig::new(words, width).unwrap();
    let registry = SchemeRegistry::all(width).unwrap();
    let source = if words.is_multiple_of(2) {
        march_c_minus()
    } else {
        mats_plus()
    };
    let engine = CoverageEngine::for_scheme(registry.get(scheme).unwrap(), &source, config)
        .unwrap()
        .content(content)
        .build()
        .unwrap();
    let universe = UniverseBuilder::new(config).stuck_at().transition().build();
    let options = DictionaryOptions {
        multi_fault_samples: samples,
        ..DictionaryOptions::default()
    };
    SignatureDictionary::build(&engine, &universe, &options).unwrap()
}

fn temp_store(tag: u64) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "twm-equivalence-{}-{tag:x}.twmstore",
        std::process::id()
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole equivalence: disk-served lookups are bit-identical
    /// to RAM over random shapes, schemes, contents and sampled
    /// multi-fault loads.
    #[test]
    fn paged_lookups_are_bit_identical_to_ram(
        words in 6usize..10,
        width_pick in 0usize..2,
        scheme_pick in 0usize..2,
        seed in any::<u64>(),
        samples in 0usize..50,
    ) {
        let width = [4, 8][width_pick];
        let scheme = [SchemeId::TwmTa, SchemeId::Scheme1][scheme_pick];
        let content = if seed.is_multiple_of(3) {
            ContentPolicy::Zeros
        } else {
            ContentPolicy::Random { seed }
        };
        let dictionary = build(words, width, scheme, content, samples);

        let path = temp_store((words as u64) << 32 | samples as u64);
        let options = store_options(dictionary.fault_free_trail().len());
        PagedDictionary::write(&dictionary, &path, &options).unwrap();
        let paged = PagedDictionary::open(&path, &options).unwrap();

        // Acceptance: the file must dwarf the budget by >= 4x, so the
        // equivalence below is actually exercised out of core.
        prop_assert!(
            paged.file_bytes() >= 4 * options.cache_budget as u64,
            "file {} bytes < 4x budget {}",
            paged.file_bytes(),
            options.cache_budget
        );

        // Every indexed trail: same class, same diagnosis.
        for class in dictionary.classes() {
            prop_assert_eq!(paged.lookup(&class.trail).unwrap().as_ref(), Some(class));
            prop_assert_eq!(
                localise_trail(&paged, &class.trail).unwrap(),
                localise_trail(&dictionary, &class.trail).unwrap()
            );
        }
        // The fault-free trail and synthetic absent trails: same misses.
        let reference = dictionary.fault_free_trail();
        prop_assert_eq!(
            localise_trail(&paged, reference).unwrap(),
            localise_trail(&dictionary, reference).unwrap()
        );
        for probe in 0..16u32 {
            let trail = SignatureTrail::new(
                reference
                    .signatures()
                    .iter()
                    .enumerate()
                    .map(|(at, word)| {
                        let bits = word.to_bits() ^ u128::from(probe.wrapping_mul(at as u32 + 1));
                        Word::from_bits(bits & Word::ones(width).to_bits(), width).unwrap()
                    })
                    .collect(),
            );
            prop_assert_eq!(
                paged.lookup(&trail).unwrap(),
                dictionary.lookup(&trail).cloned()
            );
        }
        // Content-normalised lookup flows through the same trait path:
        // drift every signature by a constant, as a different memory
        // content would, and diagnose against the drifted expectation.
        let shift = SignatureTrail::new(
            vec![Word::from_bits(0b11, width).unwrap(); reference.len()],
        );
        let observed = dictionary.classes()[0].trail.xor(&shift).unwrap();
        let expected_drifted = reference.xor(&shift).unwrap();
        prop_assert_eq!(
            localise_trail_normalised(&paged, &observed, &expected_drifted).unwrap(),
            localise_trail_normalised(&dictionary, &observed, &expected_drifted).unwrap()
        );

        // And the statistics the store serves from its header agree.
        prop_assert_eq!(paged.ambiguity_stats(), dictionary.stats());
        std::fs::remove_file(&path).unwrap();
    }
}
