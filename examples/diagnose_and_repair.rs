//! The full diagnosis-to-repair loop on an 8×32 memory, deterministically:
//! a stuck-at defect appears in the field → the periodic transparent test's
//! MISR signature mismatches → the signature dictionary plus adaptive
//! follow-up sessions locate the defective cell → the allocator assigns a
//! spare word → the remapped memory re-runs the session and the signature
//! comes back clean.
//!
//! Along the way the example reports the paper-relevant "how diagnosable is
//! this scheme" number: the fraction of single faults each registered
//! scheme's signature trail distinguishes uniquely.
//!
//! Everything runs from fixed seeds, so repeated runs print the same
//! numbers (CI runs this example as a smoke check).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example diagnose_and_repair
//! ```

use twm::core::{SchemeId, SchemeRegistry};
use twm::coverage::{ContentPolicy, CoverageEngine, UniverseBuilder};
use twm::march::algorithms::march_c_minus;
use twm::mem::{BitAddress, Fault, FaultyMemory, MemoryConfig, RepairableMemory};
use twm::repair::{
    diagnose_and_repair, DiagnosticSession, DictionaryOptions, RepairAllocator, SignatureDictionary,
};

const SEED: u64 = 99;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let words = 8;
    let width = 32;
    let config = MemoryConfig::new(words, width)?;
    let source = march_c_minus();
    let registry = SchemeRegistry::comparison(width)?;
    let universe = UniverseBuilder::new(config).stuck_at().transition().build();
    println!(
        "memory {words}x{width}, universe {} faults (SAF + TF), source {}",
        universe.len(),
        source.name()
    );

    // How diagnosable is each scheme? Build a signature dictionary per
    // registered scheme (plus sampled double faults) and report its
    // ambiguity statistics.
    println!("\nsignature diagnosability per scheme (fixed content seed {SEED}):");
    let mut twm_dictionary: Option<SignatureDictionary> = None;
    for scheme in registry.iter() {
        let engine = CoverageEngine::for_scheme(scheme, &source, config)?
            .content(ContentPolicy::Random { seed: SEED })
            .build()?;
        let dictionary = SignatureDictionary::build(
            &engine,
            &universe,
            &DictionaryOptions {
                multi_fault_samples: 64,
                ..DictionaryOptions::default()
            },
        )?;
        let stats = dictionary.stats();
        println!(
            "  {:<10} {:>4} indexed, {:>4} classes, max class {:>2}, \
             {:>5.1}% uniquely diagnosable, {:>2} undetected",
            scheme.id().to_string(),
            stats.indexed,
            stats.classes,
            stats.max_class_size,
            stats.distinguishable_fraction() * 100.0,
            stats.undetected
        );
        if scheme.id() == SchemeId::TwmTa {
            twm_dictionary = Some(dictionary);
        }
    }
    let dictionary = twm_dictionary.expect("comparison registry registers TWM_TA");

    // A defect appears in the field: bit 17 of word 5 sticks at 1.
    let defect_cell = BitAddress::new(5, 17);
    let fault = Fault::stuck_at(defect_cell, true);
    let mut memory = FaultyMemory::with_faults(config, vec![fault])?;
    memory.fill_random(SEED);
    println!("\ninjected defect: {fault}");

    // The periodic test catches it: signatures mismatch.
    let transform = registry.transform(SchemeId::TwmTa, &source)?;
    let caught =
        twm::bist::run_scheme_session(&transform, &mut memory, twm::bist::Misr::standard(width))?;
    assert!(
        caught.fault_detected(),
        "periodic test must catch the fault"
    );
    println!(
        "periodic TWM_TA session: predicted {} != observed {}  -> FAIL",
        caught.predicted_signature, caught.test_signature
    );

    // Diagnose, allocate a spare, remap, verify — one call.
    let session = DiagnosticSession::new(&registry, &source)?.with_dictionary(&dictionary)?;
    let flow = diagnose_and_repair(
        &session,
        &RepairAllocator::default(),
        RepairableMemory::new(memory, 2)?,
    )?;

    println!(
        "\nlocalisation: dictionary {} (ambiguity class of {}), {} scheme sessions",
        if flow.localisation.dictionary_hit {
            "hit"
        } else {
            "miss"
        },
        flow.localisation.ambiguity,
        flow.localisation.sessions.len()
    );
    for defect in flow.localisation.defects.iter().take(3) {
        println!(
            "  suspect {}: confidence {:.2} (class {}, read-log {}, probe {}), \
             hypothesis {:?}, stuck at {:?}",
            defect.cell,
            defect.confidence,
            defect.evidence.in_ambiguity_class,
            defect.evidence.read_log_suspect,
            defect.evidence.local_probe,
            defect.hypothesis,
            defect.stuck_value
        );
    }

    println!("\nrepair plan ({} spares):", flow.plan.spares_available);
    for assignment in &flow.plan.assignments {
        println!(
            "  word {} -> spare {}  (defects: {})",
            assignment.word,
            assignment.spare,
            assignment
                .defects
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        );
    }
    println!(
        "verification: predicted {} == observed {}, content preserved: {}",
        flow.verification.outcome.predicted_signature,
        flow.verification.outcome.test_signature,
        flow.verification.outcome.content_preserved
    );

    // The acceptance contract this example is CI-gated on.
    assert!(flow.localisation.dictionary_hit, "dictionary lookup missed");
    assert_eq!(
        flow.localisation.defects[0].cell, defect_cell,
        "wrong cell located"
    );
    assert!(flow.plan.fully_repairs(), "plan left defects unrepaired");
    assert_eq!(flow.memory.mapped_spare(5), Some(0), "word 5 not remapped");
    assert!(flow.verification.clean(), "signature still failing");
    println!("\nOK: {fault} located, repaired with spare 0, signature clean again");
    Ok(())
}
