//! Reproduces the paper's Section 5 fault-coverage experiment: the
//! transparent word-oriented march test (TWMarch) is compared, fault class
//! by fault class, against the corresponding non-transparent word-oriented
//! march test (the bit-oriented test on solid backgrounds plus AMarch).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example fault_coverage
//! ```

use twm::core::atmarch::amarch;
use twm::core::{SchemeId, SchemeRegistry};
use twm::coverage::{ContentPolicy, CoverageEngine, UniverseBuilder};
use twm::march::algorithms::march_c_minus;
use twm::mem::{FaultClass, MemoryConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let width = 8;
    let words = 16;
    let config = MemoryConfig::new(words, width)?;
    let bmarch = march_c_minus();

    // The proposed transparent test and its non-transparent counterpart.
    let registry = SchemeRegistry::all(width)?;
    let transformed = registry.transform(SchemeId::TwmTa, &bmarch)?;
    let counterpart = bmarch.concatenated(
        &amarch(width)?,
        format!("{} + AMarch (W={width})", bmarch.name()),
    );

    // One engine per test: the transparent test runs on arbitrary content,
    // the non-transparent counterpart initialises the memory itself and is
    // evaluated from all-zero content. Each engine lowers its test and
    // generates its initial contents exactly once.
    let transparent = CoverageEngine::builder(config)
        .test(transformed.transparent_test())
        .content(ContentPolicy::Random { seed: 2025 })
        .build()?;
    let nontransparent = CoverageEngine::builder(config)
        .test(&counterpart)
        .content(ContentPolicy::Zeros)
        .build()?;

    // A translation-closed fault universe: every SAF/TF on every cell and
    // every coupling variant for every intra-word pair and adjacent-word
    // pair. Closure under content translation is what makes the per-class
    // counts comparable between the transparent and non-transparent tests.
    let faults = UniverseBuilder::new(config).all_classes().build();
    println!(
        "evaluating {} faults on a {}x{} memory\n",
        faults.len(),
        words,
        width
    );

    let report = transparent.compare(&nontransparent, &faults)?;

    println!("{}", report.first);
    println!();
    println!("{}", report.second);
    println!();
    println!(
        "per-class counts equal for SAF/TF/CFid/CFin: {}",
        report.class_counts_equal_for(&[
            FaultClass::Saf,
            FaultClass::Tf,
            FaultClass::Cfid,
            FaultClass::Cfin
        ])
    );
    println!(
        "CFst coverage gap (transparent vs non-transparent): {:.2} percentage points",
        report.class_coverage_gap(FaultClass::Cfst) * 100.0
    );
    println!(
        "faults on which the two tests disagree: {}",
        report.disagreements.len()
    );
    Ok(())
}
