//! A fleet of 100 devices across two deployment shards reporting MISR
//! signature trails to one [`twm::fleet::FleetService`]:
//!
//! 1. Two shards — `(16x8, TWM_TA, March C−)` and `(16x8, Scheme 1,
//!    MATS+)` — get their signature dictionaries built **server-side**
//!    through the cached engine path and registered in the sharded store.
//! 2. 100 simulated devices run their periodic transparent session; most
//!    are healthy, some carry a stuck-at or transition defect, a few
//!    report to a shard nobody registered.
//! 3. One `DiagnoseBatch` request fans the reports across worker threads
//!    (bit-identical to serial), returning a ranked diagnosis, a spare
//!    assignment and a simulation-verified repair verdict per device,
//!    plus fleet statistics.
//! 4. Each diagnosed device applies its plan locally; the example
//!    re-runs the device's session to prove the signature comes back
//!    clean.
//!
//! Everything runs from fixed seeds, so repeated runs print the same
//! numbers (CI runs this example as a smoke check).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example fleet_diagnosis
//! ```

use twm::bist::{run_scheme_session_staged, Misr};
use twm::core::{SchemeId, SchemeRegistry};
use twm::coverage::ContentPolicy;
use twm::fleet::{
    DeviceReport, DeviceVerdict, FleetService, Request, Response, ShardKey, SignatureTrail,
    UniverseSpec,
};
use twm::march::algorithms::{march_c_minus, mats_plus};
use twm::march::MarchTest;
use twm::mem::{
    BitAddress, Fault, FaultSet, FaultyMemory, MemoryConfig, RepairableMemory, SplitMix64,
    Transition,
};
use twm::repair::verify_repair;

const SEED: u64 = 2005;
const DEVICES: usize = 100;

/// One simulated device: its shard, its (possibly empty) defect list and
/// its spare-word budget.
struct Device {
    name: String,
    shard: ShardKey,
    scheme: SchemeId,
    source: MarchTest,
    faults: Vec<Fault>,
    spares: usize,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = MemoryConfig::new(16, 8)?;
    let content = ContentPolicy::Random { seed: SEED };
    let service = FleetService::with_defaults()?;

    // --- 1. Register the two deployment shards (server-side builds). ---
    let deployments = [
        (SchemeId::TwmTa, march_c_minus()),
        (SchemeId::Scheme1, mats_plus()),
    ];
    println!("registering {} shards on the service:", deployments.len());
    for (scheme, source) in &deployments {
        let response = service.handle(Request::BuildDictionary {
            scheme: *scheme,
            source: source.clone(),
            config,
            content,
            universe: UniverseSpec::default(),
        });
        let Response::Registered {
            shard,
            classes,
            indexed,
        } = response
        else {
            panic!("dictionary build failed: {response:?}");
        };
        println!("  {shard}: {indexed} injections indexed into {classes} ambiguity classes");
    }

    // --- 2. Simulate the fleet's periodic test reports. ---
    let mut rng = SplitMix64::new(SEED);
    let ghost_shard = ShardKey::new(config, SchemeId::Tomt, &march_c_minus());
    let devices: Vec<Device> = (0..DEVICES)
        .map(|index| {
            let (scheme, source) = &deployments[index % deployments.len()];
            let mut shard = ShardKey::new(config, *scheme, source);
            let roll = rng.next_below(10);
            let faults = match roll {
                // 40%: healthy.
                0..=3 => Vec::new(),
                // 10%: reports to an unregistered shard.
                4 => {
                    shard = ghost_shard;
                    Vec::new()
                }
                // 30%: one stuck-at defect.
                5..=7 => {
                    let cell = BitAddress::new(
                        rng.next_below(config.words()),
                        rng.next_below(config.width()),
                    );
                    vec![Fault::stuck_at(cell, rng.next_below(2) == 0)]
                }
                // 20%: one transition defect.
                _ => {
                    let cell = BitAddress::new(
                        rng.next_below(config.words()),
                        rng.next_below(config.width()),
                    );
                    let direction = if rng.next_below(2) == 0 {
                        Transition::Rising
                    } else {
                        Transition::Falling
                    };
                    vec![Fault::transition(cell, direction)]
                }
            };
            Device {
                name: format!("device-{index:03}"),
                shard,
                scheme: *scheme,
                source: source.clone(),
                faults,
                spares: 2,
            }
        })
        .collect();

    let registry = SchemeRegistry::all(config.width())?;
    let reports: Vec<DeviceReport> = devices
        .iter()
        .map(|device| {
            Ok(DeviceReport {
                device: device.name.clone(),
                shard: device.shard,
                trail: run_device_session(&registry, config, device)?,
                spares: device.spares,
            })
        })
        .collect::<Result<_, Box<dyn std::error::Error>>>()?;
    println!(
        "\n{} devices report trails ({} workers on the service)",
        reports.len(),
        service.workers()
    );

    // --- 3. One batched diagnose-and-repair request. ---
    let Response::Batch(batch) = service.handle(Request::DiagnoseBatch { reports }) else {
        panic!("batch request failed");
    };
    let stats = &batch.statistics;
    println!(
        "verdicts: {} clean, {} diagnosed ({} fully repairable, {} verified clean), \
         {} unknown-shard, {} unknown-trail",
        stats.clean,
        stats.diagnosed,
        stats.fully_repaired,
        stats.verified_clean,
        stats.unknown_shard,
        stats.unknown_trail
    );
    println!("failure rates per fault class:");
    for (class, count, fraction) in stats.failure_rates() {
        println!("  {class:?}: {count} defects ({:.0}%)", fraction * 100.0);
    }
    println!("repair rate vs spare budget:");
    for (spares, rate) in stats.repair_rate_curve() {
        println!(
            "  {spares} spares -> {:.0}% of diagnosed devices",
            rate * 100.0
        );
    }

    // --- 4. Devices apply their plans; sessions must come back clean. ---
    // A plan the service verified clean on the class representative must
    // also repair the device's *actual* defect: the plan covers every
    // candidate word of the ambiguity class, and the real fault is one of
    // its members.
    let mut repaired = 0usize;
    for (device, outcome) in devices.iter().zip(&batch.outcomes) {
        assert_eq!(device.name, outcome.device, "batch reordered outcomes");
        let DeviceVerdict::Diagnosed(diagnosis) = &outcome.verdict else {
            continue;
        };
        if !diagnosis.predicted_clean {
            // The ambiguity class spread over more words than the spare
            // budget covers — the service reports it, the device escalates.
            continue;
        }
        let transform = registry.transform(device.scheme, &device.source)?;
        let mut memory = RepairableMemory::new(
            FaultyMemory::with_faults(config, FaultSet::from_faults(device.faults.clone()))?,
            device.spares,
        )?;
        memory.main_mut().fill_random(SEED);
        diagnosis.plan.apply(&mut memory)?;
        let verification = verify_repair(&transform, &mut memory, Misr::standard(config.width()))?;
        assert!(
            verification.clean(),
            "{}: signature still failing after repair",
            device.name
        );
        repaired += 1;
    }
    println!("\n{repaired} defective devices repaired and re-verified locally");

    // The acceptance contract this example is CI-gated on.
    assert_eq!(stats.devices, DEVICES as u64);
    assert!(stats.clean > 0, "no healthy devices in the fleet");
    assert!(stats.unknown_shard > 0, "ghost shard never exercised");
    assert!(stats.diagnosed > 0, "no device was diagnosed");
    assert!(
        stats.fully_repaired > 0,
        "no repairable device in the fleet"
    );
    assert_eq!(
        stats.verified_clean, stats.fully_repaired,
        "a fully-repairing plan failed simulated verification"
    );
    assert_eq!(repaired as u64, stats.verified_clean);
    println!("OK: fleet of {DEVICES} devices diagnosed, repaired and verified");
    Ok(())
}

/// Runs one device's periodic transparent session and returns its trail.
fn run_device_session(
    registry: &SchemeRegistry,
    config: MemoryConfig,
    device: &Device,
) -> Result<SignatureTrail, Box<dyn std::error::Error>> {
    let transform = registry.transform(device.scheme, &device.source)?;
    let mut memory =
        FaultyMemory::with_faults(config, FaultSet::from_faults(device.faults.clone()))?;
    memory.fill_random(SEED);
    let staged =
        run_scheme_session_staged(&transform, &mut memory, Misr::standard(config.width()))?;
    Ok(SignatureTrail::new(staged.signature_trail()))
}
