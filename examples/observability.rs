//! An instrumented fleet run, watched end to end through [`twm::obs`]:
//!
//! 1. Tracing is switched on into a bounded ring sink (it is off — one
//!    relaxed atomic load per would-be span — by default).
//! 2. One shard's signature dictionary is built **server-side** and
//!    eight devices (six healthy, two with stuck-at defects) report
//!    their MISR trails in a single `DiagnoseBatch`.
//! 3. The process-wide metrics registry is scraped through the same
//!    `Request::Metrics` endpoint a `FleetClient` would hit over TCP,
//!    and the Prometheus-style exposition is printed.
//! 4. The example asserts the key instrumentation actually fired:
//!    request/latency series, batch fan-out counts, cache misses from
//!    the cold shard, coverage-engine windows from the dictionary
//!    build, and the spans the ring sink captured.
//!
//! Everything runs from fixed seeds, so repeated runs print the same
//! verdicts (CI runs this example as a smoke check; only the latency
//! samples vary).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example observability
//! ```

use std::sync::Arc;

use twm::bist::{run_scheme_session_staged, Misr};
use twm::core::{SchemeId, SchemeRegistry};
use twm::coverage::ContentPolicy;
use twm::fleet::{
    DeviceReport, DeviceVerdict, FleetService, Request, Response, ShardKey, SignatureTrail,
    UniverseSpec,
};
use twm::march::algorithms::march_c_minus;
use twm::mem::{BitAddress, Fault, FaultSet, FaultyMemory, MemoryConfig};
use twm::obs::{trace, MetricValue, MetricsReport, RingSink};

const SEED: u64 = 2005;
const DEVICES: usize = 8;

/// Sum of a counter's samples in the report (across label sets).
fn counter(report: &MetricsReport, name: &str) -> u64 {
    report
        .metrics
        .iter()
        .filter(|sample| sample.name == name)
        .map(|sample| match &sample.value {
            MetricValue::Counter(value) => *value,
            _ => 0,
        })
        .sum()
}

fn device_trail(config: MemoryConfig, faults: &[Fault]) -> SignatureTrail {
    let registry = SchemeRegistry::all(config.width()).unwrap();
    let transform = registry
        .get(SchemeId::TwmTa)
        .unwrap()
        .transform(&march_c_minus())
        .unwrap();
    let mut memory =
        FaultyMemory::with_faults(config, FaultSet::from_faults(faults.iter().copied())).unwrap();
    memory.fill_random(SEED);
    let misr = Misr::standard(config.width());
    let staged = run_scheme_session_staged(&transform, &mut memory, misr).unwrap();
    SignatureTrail::new(staged.signature_trail())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Open the trace gate into a bounded, drop-oldest ring.
    let ring = Arc::new(RingSink::new(4096));
    trace::set_sink(ring.clone());
    trace::set_enabled(true);

    let config = MemoryConfig::new(16, 8)?;
    let service = FleetService::with_defaults()?;
    let shard = ShardKey::new(config, SchemeId::TwmTa, &march_c_minus());

    // 2. Server-side dictionary build (exercises the instrumented
    //    coverage engine), then one batched diagnosis.
    let Response::Registered { indexed, .. } = service.handle(Request::BuildDictionary {
        scheme: SchemeId::TwmTa,
        source: march_c_minus(),
        config,
        content: ContentPolicy::Random { seed: SEED },
        universe: UniverseSpec::default(),
    }) else {
        panic!("server-side build failed");
    };
    println!("shard registered: {indexed} injections indexed in the dictionary");

    let reports: Vec<DeviceReport> = (0..DEVICES)
        .map(|index| {
            let defects = match index {
                2 => vec![Fault::stuck_at(BitAddress::new(3, 1), true)],
                5 => vec![Fault::stuck_at(BitAddress::new(9, 6), false)],
                _ => Vec::new(),
            };
            DeviceReport {
                device: format!("device-{index:02}"),
                shard,
                trail: device_trail(config, &defects),
                spares: 1,
            }
        })
        .collect();
    let Response::Batch(batch) = service.handle(Request::DiagnoseBatch { reports }) else {
        panic!("batch failed");
    };
    let diagnosed = batch
        .outcomes
        .iter()
        .filter(|outcome| matches!(outcome.verdict, DeviceVerdict::Diagnosed(_)))
        .count();
    println!(
        "batch: {} devices, {diagnosed} diagnosed, {} clean",
        batch.statistics.devices,
        batch.outcomes.len() - diagnosed
    );
    assert_eq!(batch.statistics.devices, DEVICES as u64);
    assert_eq!(diagnosed, 2);

    // 3. One coverage report on the same shard exercises the
    //    instrumented engine (packed-batch counts, report latency).
    let registry = SchemeRegistry::all(config.width())?;
    let engine = twm::coverage::CoverageEngine::for_scheme(
        registry.get(SchemeId::TwmTa).unwrap(),
        &march_c_minus(),
        config,
    )?
    .content(ContentPolicy::Random { seed: SEED })
    .build()?;
    let universe = twm::coverage::UniverseBuilder::new(config)
        .stuck_at()
        .transition()
        .build();
    let coverage = engine.report(&universe)?;
    println!(
        "coverage report: {}/{} faults detected",
        coverage.detected_faults(),
        universe.len()
    );

    // 4. Scrape the registry through the service endpoint — the same
    //    one-snapshot `{text, report}` pair a TCP client receives.
    trace::set_enabled(false);
    let Response::Metrics { text, report } = service.handle(Request::Metrics) else {
        panic!("metrics scrape failed");
    };
    assert_eq!(report.expose(), text, "one snapshot, two renderings");
    println!("\n=== metrics exposition ===\n{text}");

    // 5. The instrumentation actually fired.
    for name in [
        "twm_fleet_requests_total",
        "twm_fleet_batch_devices_total",
        "twm_fleet_cache_misses_total",
        "twm_coverage_reports_total",
        "twm_coverage_packed_faults_total",
    ] {
        let value = counter(&report, name);
        assert!(value > 0, "{name} stayed zero");
        println!("{name} = {value}");
    }
    assert!(text.contains("# TYPE twm_fleet_request_latency_ns histogram"));

    let records = ring.take();
    let spans = records
        .iter()
        .filter(|record| matches!(record, twm::obs::Record::Span { .. }))
        .count();
    println!(
        "\ntrace ring captured {} records ({spans} spans)",
        records.len()
    );
    assert!(spans >= 2, "request and batch spans were traced");

    println!("\nobservability example OK");
    Ok(())
}
