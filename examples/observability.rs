//! An instrumented fleet run, watched end to end through [`twm::obs`]:
//!
//! 1. Tracing is switched on into a bounded ring sink (it is off — one
//!    relaxed atomic load per would-be span — by default), and the
//!    fleet service binds a pull-based HTTP `/metrics` endpoint.
//! 2. One shard's signature dictionary is built **server-side** and
//!    eight devices (six healthy, two with stuck-at defects) report
//!    their MISR trails in a single `DiagnoseBatch`.
//! 3. A coverage report runs under the **sampling profiler sink**, and
//!    the per-span self-time profile is printed.
//! 4. Cumulative statistics carry per-variant latency histograms,
//!    summarised to p50/p90/p99 quantiles.
//! 5. The endpoint is scraped **over TCP** (a raw, curl-free HTTP GET)
//!    and the bytes are asserted identical to the `Request::Metrics`
//!    exposition of the same registry state; `/healthz` answers too.
//! 6. The example asserts the key instrumentation actually fired:
//!    request/latency series, batch fan-out counts, cache misses from
//!    the cold shard, coverage-engine windows from the dictionary
//!    build, and the spans the ring sink captured.
//!
//! Everything runs from fixed seeds, so repeated runs print the same
//! verdicts (CI runs this example as a smoke check; only the latency
//! samples vary).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example observability
//! ```

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::Arc;

use twm::bist::{run_scheme_session_staged, Misr};
use twm::core::{SchemeId, SchemeRegistry};
use twm::coverage::ContentPolicy;
use twm::fleet::{
    DeviceReport, DeviceVerdict, FleetConfig, FleetService, Request, Response, ShardKey,
    SignatureTrail, UniverseSpec,
};
use twm::march::algorithms::march_c_minus;
use twm::mem::{BitAddress, Fault, FaultSet, FaultyMemory, MemoryConfig};
use twm::obs::{trace, MetricValue, MetricsReport, ProfilerSink, RingSink};

const SEED: u64 = 2005;
const DEVICES: usize = 8;

/// Sum of a counter's samples in the report (across label sets).
fn counter(report: &MetricsReport, name: &str) -> u64 {
    report
        .metrics
        .iter()
        .filter(|sample| sample.name == name)
        .map(|sample| match &sample.value {
            MetricValue::Counter(value) => *value,
            _ => 0,
        })
        .sum()
}

/// A raw, dependency-free HTTP GET: returns (status line, body bytes).
fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<(String, Vec<u8>)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(format!("GET {path} HTTP/1.1\r\nHost: twm-example\r\n\r\n").as_bytes())?;
    stream.shutdown(Shutdown::Write)?;
    let mut response = Vec::new();
    stream.read_to_end(&mut response)?;
    let split = response
        .windows(4)
        .position(|window| window == b"\r\n\r\n")
        .expect("response has a header/body split");
    let status = std::str::from_utf8(&response[..split])
        .expect("ASCII head")
        .lines()
        .next()
        .expect("status line")
        .to_string();
    Ok((status, response[split + 4..].to_vec()))
}

fn device_trail(config: MemoryConfig, faults: &[Fault]) -> SignatureTrail {
    let registry = SchemeRegistry::all(config.width()).unwrap();
    let transform = registry
        .get(SchemeId::TwmTa)
        .unwrap()
        .transform(&march_c_minus())
        .unwrap();
    let mut memory =
        FaultyMemory::with_faults(config, FaultSet::from_faults(faults.iter().copied())).unwrap();
    memory.fill_random(SEED);
    let misr = Misr::standard(config.width());
    let staged = run_scheme_session_staged(&transform, &mut memory, misr).unwrap();
    SignatureTrail::new(staged.signature_trail())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Open the trace gate into a bounded, drop-oldest ring, and ask
    //    the service for a scrapeable HTTP endpoint on an OS-picked port.
    let ring = Arc::new(RingSink::new(4096));
    trace::set_sink(ring.clone());
    trace::set_enabled(true);

    let config = MemoryConfig::new(16, 8)?;
    let service = FleetService::new(FleetConfig {
        metrics_http: Some("127.0.0.1:0".parse()?),
        ..FleetConfig::default()
    })?;
    let endpoint = service.metrics_addr().expect("metrics endpoint bound");
    println!("metrics endpoint: http://{endpoint}/metrics");
    let shard = ShardKey::new(config, SchemeId::TwmTa, &march_c_minus());

    // 2. Server-side dictionary build (exercises the instrumented
    //    coverage engine), then one batched diagnosis.
    let Response::Registered { indexed, .. } = service.handle(Request::BuildDictionary {
        scheme: SchemeId::TwmTa,
        source: march_c_minus(),
        config,
        content: ContentPolicy::Random { seed: SEED },
        universe: UniverseSpec::default(),
    }) else {
        panic!("server-side build failed");
    };
    println!("shard registered: {indexed} injections indexed in the dictionary");

    let reports: Vec<DeviceReport> = (0..DEVICES)
        .map(|index| {
            let defects = match index {
                2 => vec![Fault::stuck_at(BitAddress::new(3, 1), true)],
                5 => vec![Fault::stuck_at(BitAddress::new(9, 6), false)],
                _ => Vec::new(),
            };
            DeviceReport {
                device: format!("device-{index:02}"),
                shard,
                trail: device_trail(config, &defects),
                spares: 1,
            }
        })
        .collect();
    let Response::Batch(batch) = service.handle(Request::DiagnoseBatch { reports }) else {
        panic!("batch failed");
    };
    let diagnosed = batch
        .outcomes
        .iter()
        .filter(|outcome| matches!(outcome.verdict, DeviceVerdict::Diagnosed(_)))
        .count();
    println!(
        "batch: {} devices, {diagnosed} diagnosed, {} clean",
        batch.statistics.devices,
        batch.outcomes.len() - diagnosed
    );
    assert_eq!(batch.statistics.devices, DEVICES as u64);
    assert_eq!(diagnosed, 2);

    // 3. One coverage report on the same shard, traced into the
    //    sampling profiler: per-span self-time instead of raw records.
    let profiler = Arc::new(ProfilerSink::new());
    trace::set_sink(profiler.clone());
    let registry = SchemeRegistry::all(config.width())?;
    let engine = twm::coverage::CoverageEngine::for_scheme(
        registry.get(SchemeId::TwmTa).unwrap(),
        &march_c_minus(),
        config,
    )?
    .content(ContentPolicy::Random { seed: SEED })
    .build()?;
    let universe = twm::coverage::UniverseBuilder::new(config)
        .stuck_at()
        .transition()
        .build();
    let coverage = engine.report(&universe)?;
    println!(
        "coverage report: {}/{} faults detected",
        coverage.detected_faults(),
        universe.len()
    );
    let profile = profiler.snapshot();
    assert!(!profile.spans.is_empty(), "the profiler saw no spans");
    println!("\n=== profile (self-time per span) ===");
    for span in profile.top(5) {
        println!(
            "{:<28} x{:<5} self {:>9.3} ms  total {:>9.3} ms",
            span.name,
            span.calls,
            span.self_ns as f64 / 1e6,
            span.total_ns as f64 / 1e6
        );
    }

    // 4. The cumulative statistics view carries per-variant latency,
    //    summarised to quantiles.
    let Response::Statistics(statistics) = service.handle(Request::Statistics) else {
        panic!("statistics failed");
    };
    println!("\n=== request latency quantiles (ns) ===");
    let quantiles = statistics.latency_quantiles();
    assert!(!quantiles.is_empty(), "no latency recorded");
    for (variant, summary) in &quantiles {
        println!(
            "{variant:<20} n={:<4} p50 {:>12.0}  p90 {:>12.0}  p99 {:>12.0}",
            summary.count, summary.p50, summary.p90, summary.p99
        );
        assert!(summary.p50 <= summary.p90 && summary.p90 <= summary.p99);
    }

    // 5. Scrape over the wire *first*, then through the in-process
    //    endpoint: `handle` counts a request after its dispatch
    //    snapshots the registry, so both see identical state and the
    //    bytes must match exactly.
    trace::set_enabled(false);
    let (status, scraped) = http_get(endpoint, "/metrics")?;
    assert_eq!(status, "HTTP/1.1 200 OK");
    let Response::Metrics { text, report } = service.handle(Request::Metrics) else {
        panic!("metrics scrape failed");
    };
    assert_eq!(report.expose(), text, "one snapshot, two renderings");
    assert_eq!(
        scraped,
        text.clone().into_bytes(),
        "HTTP scrape and Request::Metrics must expose the same bytes"
    );
    let (status, health) = http_get(endpoint, "/healthz")?;
    assert_eq!(status, "HTTP/1.1 200 OK");
    println!("\nhealthz: {}", String::from_utf8_lossy(&health));
    println!("\n=== metrics exposition (HTTP scrape == Request::Metrics) ===\n{text}");

    // 6. The instrumentation actually fired.
    for name in [
        "twm_fleet_requests_total",
        "twm_fleet_batch_devices_total",
        "twm_fleet_cache_misses_total",
        "twm_coverage_reports_total",
        "twm_coverage_packed_faults_total",
    ] {
        let value = counter(&report, name);
        assert!(value > 0, "{name} stayed zero");
        println!("{name} = {value}");
    }
    assert!(text.contains("# TYPE twm_fleet_request_latency_ns histogram"));
    assert!(text.contains("# TYPE twm_build_info gauge"));

    let records = ring.take();
    let spans = records
        .iter()
        .filter(|record| matches!(record, twm::obs::Record::Span { .. }))
        .count();
    println!(
        "\ntrace ring captured {} records ({spans} spans)",
        records.len()
    );
    assert!(spans >= 2, "request and batch spans were traced");

    println!("\nobservability example OK");
    Ok(())
}
