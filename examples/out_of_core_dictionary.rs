//! Out-of-core signature dictionaries: build a dictionary whose file is
//! several times the page-cache budget, then prove disk-served diagnosis
//! is bit-identical to the in-RAM build.
//!
//! 1. Build a `16x8` TWM_TA / March C− dictionary twice: once in RAM
//!    ([`twm::repair::SignatureDictionary`]) and once streamed straight
//!    to a paged store file ([`twm::store::PagedDictionary`]) whose
//!    page cache holds only a handful of pages.
//! 2. Look up **every** ambiguity class and run `localise_trail` on its
//!    trail through both backends — every answer must match bit for bit
//!    while the file dwarfs the cache budget at least 4×.
//! 3. Print the store geometry (pages, bytes/entry) and the page-cache
//!    hit/miss/eviction counters the lookups racked up.
//!
//! Everything runs from fixed seeds, so repeated runs print the same
//! numbers (CI runs this example as a smoke check).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example out_of_core_dictionary
//! ```

use twm::core::{SchemeId, SchemeRegistry};
use twm::coverage::{ContentPolicy, CoverageEngine, UniverseBuilder};
use twm::march::algorithms::march_c_minus;
use twm::mem::MemoryConfig;
use twm::repair::{localise_trail, DictionaryOptions, SignatureDictionary, TrailLookup};
use twm::store::{PagedDictionary, StoreOptions};

const SEED: u64 = 2005;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = MemoryConfig::new(16, 8)?;
    let registry = SchemeRegistry::all(8)?;
    let engine = CoverageEngine::for_scheme(
        registry.get(SchemeId::TwmTa).unwrap(),
        &march_c_minus(),
        config,
    )?
    .content(ContentPolicy::Random { seed: SEED })
    .build()?;
    let universe = UniverseBuilder::new(config).stuck_at().transition().build();
    let options = DictionaryOptions {
        multi_fault_samples: 128,
        ..DictionaryOptions::default()
    };

    // The in-RAM reference build.
    let resident = SignatureDictionary::build(&engine, &universe, &options)?;

    // The same build streamed to disk: small pages, a cache budget of
    // only a few pages, so lookups genuinely page in from the file.
    let trail_words = resident.fault_free_trail().len();
    let page_size = (16 + trail_words * 16 + 8).next_power_of_two().max(512);
    let store = StoreOptions {
        page_size,
        cache_budget: 4 * page_size,
    };
    let path =
        std::env::temp_dir().join(format!("twm-out-of-core-{}.twmstore", std::process::id()));
    let paged = PagedDictionary::build_to_disk(&engine, &universe, &options, &path, &store)?;

    println!(
        "out-of-core dictionary ({}x{} TWM_TA / March C-)",
        config.words(),
        config.width()
    );
    println!("  universe             : {} faults", universe.len());
    println!(
        "  ambiguity classes    : {} ({} trail words each)",
        paged.classes(),
        trail_words
    );
    println!(
        "  store file           : {} bytes in {}-byte pages",
        paged.file_bytes(),
        paged.page_size()
    );
    println!(
        "  bytes per entry      : {:.1}",
        paged.file_bytes() as f64 / paged.classes() as f64
    );
    println!("  page-cache budget    : {} bytes", paged.cache_budget());

    // The acceptance shape: the file must dwarf the cache by >= 4x, so
    // the equivalence below is actually served out of core.
    assert!(
        paged.file_bytes() >= 4 * store.cache_budget as u64,
        "file must be at least 4x the page-cache budget"
    );

    // Every class: same lookup, same diagnosis, bit for bit.
    let mut checked = 0usize;
    for class in resident.classes() {
        assert_eq!(
            paged.lookup(&class.trail)?.as_ref(),
            Some(class),
            "disk-served lookup diverged from RAM"
        );
        assert_eq!(
            localise_trail(&paged, &class.trail)?,
            localise_trail(&resident, &class.trail)?,
            "disk-served diagnosis diverged from RAM"
        );
        checked += 1;
    }
    // The fault-free trail diagnoses clean from disk too.
    let clean = localise_trail(&paged, resident.fault_free_trail())?;
    assert!(clean.clean, "fault-free trail must diagnose clean");
    assert_eq!(paged.ambiguity_stats(), resident.stats());

    let metrics = paged.cache_metrics();
    println!("  lookups checked      : {checked} classes, all bit-identical");
    println!(
        "  page cache           : {} hits / {} misses / {} evictions (hit rate {:.3})",
        metrics.hits,
        metrics.misses,
        metrics.evictions,
        metrics.hit_rate()
    );

    std::fs::remove_file(&path)?;
    println!("ok: disk-served diagnosis is bit-identical to the in-RAM build");
    Ok(())
}
