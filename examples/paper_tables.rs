//! Regenerates every table and worked example of the paper's evaluation,
//! driven entirely by the scheme registry:
//!
//! * the Section 4 worked example (March U, 8-bit words, 29 operations),
//! * Table 1 (word content while the first ATMarch elements execute),
//! * Table 2 (closed-form complexity of the three schemes),
//! * Table 3 (complexity for March C− / March U over word sizes 16–128),
//! * the Section 1/5/6 headline comparison (≈56 % / ≈19 % for 32-bit words).
//!
//! Run with:
//!
//! ```text
//! cargo run --example paper_tables
//! ```

use twm::core::complexity::{headline, table3_rows};
use twm::core::{SchemeId, SchemeRegistry, SchemeTransform};
use twm::march::algorithms::{march_c_minus, march_u};
use twm::march::{DataSpec, MarchTest, OpKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    section_4_worked_example()?;
    table_1()?;
    table_2()?;
    table_3()?;
    headline_comparison()?;
    Ok(())
}

/// The registry entry behind the Section 4 / Table 1 worked examples.
fn twm_ta_transform(width: usize) -> Result<SchemeTransform, Box<dyn std::error::Error>> {
    Ok(SchemeRegistry::all(width)?.transform(SchemeId::TwmTa, &march_u())?)
}

fn section_4_worked_example() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Section 4 worked example: March U on 8-bit words ==");
    let transformed = twm_ta_transform(8)?;
    println!("March U   : {}", march_u());
    println!(
        "TSMarch U : {}",
        transformed.stage(SchemeTransform::STAGE_TSMARCH).unwrap()
    );
    println!(
        "ATMarch   : {}",
        transformed.stage(SchemeTransform::STAGE_ATMARCH).unwrap()
    );
    println!(
        "TWMarch complexity: {} operations per word (paper: 29)",
        transformed.transparent_test().operations_per_word()
    );
    println!();
    Ok(())
}

/// Renders a transparent word-content trace: after every operation of the
/// first three ATMarch elements, print the word content as a function of the
/// initial bits `c7 … c0` (a prime marks a complemented bit), exactly the
/// information of the paper's Table 1.
fn table_1() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Table 1: word content during the first three ATMarch elements (W = 8) ==");
    let transformed = twm_ta_transform(8)?;
    let atmarch: &MarchTest = transformed.stage(SchemeTransform::STAGE_ATMARCH).unwrap();
    let width = 8usize;

    println!("{:<12} word content afterwards", "operation");
    let mut offset = vec![false; width]; // which bits are currently complemented
    for element in atmarch.elements().iter().take(3) {
        for op in &element.ops {
            if op.kind == OpKind::Write {
                if let DataSpec::TransparentXor(pattern) = op.data {
                    let value = pattern.resolve(width)?;
                    for (bit, flag) in offset.iter_mut().enumerate() {
                        *flag = value.bit(bit);
                    }
                }
            }
            let rendered: Vec<String> = (0..width)
                .rev()
                .map(|bit| {
                    if offset[bit] {
                        format!("c{bit}'")
                    } else {
                        format!("c{bit}")
                    }
                })
                .collect();
            println!("{:<12} {}", op.to_string(), rendered.join(" "));
        }
        println!();
    }
    Ok(())
}

fn table_2() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Table 2: closed-form complexity of the transparent test schemes ==");
    println!("(per word; N words, W-bit words, M operations, Q reads, L = ceil(log2 W))");
    println!("{:<22} {:<18} {:<18}", "scheme", "TCM", "TCP");
    let registry = SchemeRegistry::comparison(32)?;
    let label = |id: SchemeId| match id {
        SchemeId::Scheme1 => "Scheme 1 [12]",
        SchemeId::Tomt => "Scheme 2 [13] TOMT",
        SchemeId::TwmTa => "This work (TWM_TA)",
        _ => "other",
    };
    for scheme in registry.iter() {
        let formulas = scheme.formulas();
        println!(
            "{:<22} {:<18} {:<18}",
            label(scheme.id()),
            formulas.tcm,
            formulas.tcp
        );
    }
    let length = march_c_minus().length();
    let form = |id: SchemeId| registry.get(id).unwrap().closed_form(length);
    println!(
        "\nexample (March C-, W = 32): scheme1 = {}+{}, scheme2 = {}, proposed = {}+{}\n",
        form(SchemeId::Scheme1).tcm,
        form(SchemeId::Scheme1).tcp,
        form(SchemeId::Tomt).tcm,
        form(SchemeId::TwmTa).tcm,
        form(SchemeId::TwmTa).tcp,
    );
    Ok(())
}

fn table_3() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Table 3: per-word complexity (TCM+TCP) for different word sizes ==");
    let tests = vec![march_c_minus(), march_u()];
    let widths = [16usize, 32, 64, 128];
    let rows = table3_rows(&tests, &widths)?;
    println!(
        "{:<10} {:>6} {:>14} {:>14} {:>12} {:>16}",
        "test", "W", "[12] scheme1", "[13] scheme2", "this work", "this work exact"
    );
    for row in rows {
        println!(
            "{:<10} {:>6} {:>14} {:>14} {:>12} {:>16}",
            row.test_name,
            row.width,
            row.cell(SchemeId::Scheme1).unwrap().closed_form.total(),
            row.cell(SchemeId::Tomt).unwrap().closed_form.total(),
            row.cell(SchemeId::TwmTa).unwrap().closed_form.total(),
            row.cell(SchemeId::TwmTa).unwrap().exact.total(),
        );
    }
    // Also report the exact generated-test numbers of the worked examples.
    let exact = twm_ta_transform(8)?.exact_complexity();
    println!(
        "\nexact March U, W=8: TCM = {}, TCP(reads) = {}\n",
        exact.tcm, exact.tcp
    );
    Ok(())
}

fn headline_comparison() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Headline comparison (March C-, 32-bit words) ==");
    let comparison = headline(&SchemeRegistry::comparison(32)?, &march_c_minus())?;
    println!(
        "proposed total = {} ops/word, scheme 1 = {}, scheme 2 = {}",
        comparison.proposed_total, comparison.scheme1_total, comparison.scheme2_total
    );
    println!(
        "proposed / scheme1 = {:.1}%  (paper: ~56%)",
        comparison.ratio_vs_scheme1 * 100.0
    );
    println!(
        "proposed / scheme2 = {:.1}%  (paper: ~19%)",
        comparison.ratio_vs_scheme2 * 100.0
    );
    Ok(())
}
