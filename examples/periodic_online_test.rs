//! Periodic on-line testing in idle windows — the deployment scenario the
//! paper optimises for. A shorter transparent test fits into more of the
//! system's idle windows, so it interferes less with normal operation and
//! detects life-time faults (for example a transition fault that appears
//! after months in the field) sooner.
//!
//! Run with:
//!
//! ```text
//! cargo run --example periodic_online_test
//! ```

use twm::bist::controller::{schedule, IdleWindowModel, PeriodicController};
use twm::core::{SchemeId, SchemeRegistry};
use twm::march::algorithms::march_c_minus;
use twm::mem::{BitAddress, Fault, MemoryBuilder, Transition};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let width = 32;
    let words = 128;
    let bmarch = march_c_minus();

    // Transparent tests of the two schemes, from the same registry.
    let registry = SchemeRegistry::all(width)?;
    let proposed = registry.transform(SchemeId::TwmTa, &bmarch)?;
    let scheme1 = registry.transform(SchemeId::Scheme1, &bmarch)?;

    let proposed_ops = proposed.transparent_test().total_operations(words);
    let scheme1_ops = scheme1.transparent_test().total_operations(words);
    println!("memory: {words} words x {width} bits");
    println!("proposed TWMarch : {proposed_ops} operations per pass");
    println!("Scheme 1         : {scheme1_ops} operations per pass");

    // The system offers idle windows of varying length between bursts of
    // normal activity.
    let windows = IdleWindowModel::random(500, words * 10, words * 45, 0x1D1E)?;
    let report_proposed = schedule(proposed_ops, &windows);
    let report_scheme1 = schedule(scheme1_ops, &windows);
    println!(
        "\nidle-window model: 500 windows of {}..{} operations",
        words * 10,
        words * 45
    );
    println!(
        "proposed fits in a single idle window {:.1}% of the time (scheme 1: {:.1}%)",
        report_proposed.single_window_fit_fraction * 100.0,
        report_scheme1.single_window_fit_fraction * 100.0
    );
    println!(
        "windows needed for one full pass: proposed {:?}, scheme 1 {:?}",
        report_proposed.windows_used, report_scheme1.windows_used
    );

    // Life-time fault detection: the memory develops a transition fault in
    // the field; the periodic transparent test finds it while preserving the
    // application's data.
    let mut field_memory = MemoryBuilder::new(words, width)
        .random_content(0xA11)
        .fault(Fault::transition(
            BitAddress::new(77, 13),
            Transition::Falling,
        ))
        .build()?;
    let controller = PeriodicController::new(proposed.transparent_test().clone());
    let run = controller.run(&mut field_memory, &windows)?;
    println!(
        "\nperiodic run over the faulty field memory: {} windows, {} operations, {} mismatching reads",
        run.windows_used, run.operations, run.mismatches
    );
    assert!(run.mismatches > 0, "the life-time fault must be detected");
    Ok(())
}
