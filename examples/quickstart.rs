//! Quickstart: transform a bit-oriented march test into a transparent
//! word-oriented march test through the scheme registry, run it on a
//! simulated embedded memory, and see both the fault-free pass and the
//! detection of an injected fault.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use twm::bist::flow::run_scheme_session;
use twm::bist::{diagnose, execute, Misr};
use twm::core::{SchemeId, SchemeRegistry, SchemeTransform};
use twm::march::algorithms::march_c_minus;
use twm::mem::{BitAddress, Fault, MemoryBuilder, Transition};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a bit-oriented march test and a word width.
    let bmarch = march_c_minus();
    let width = 16;
    println!("bit-oriented input  : {} = {bmarch}", bmarch.name());

    // 2. Transform it with the paper's TWM_TA algorithm — one entry in the
    //    scheme registry next to the baseline schemes.
    let registry = SchemeRegistry::all(width)?;
    let transformed = registry.transform(SchemeId::TwmTa, &bmarch)?;
    println!(
        "\nTSMarch             : {}",
        transformed.stage(SchemeTransform::STAGE_TSMARCH).unwrap()
    );
    println!(
        "ATMarch             : {}",
        transformed.stage(SchemeTransform::STAGE_ATMARCH).unwrap()
    );
    println!(
        "TWMarch             : {} operations per word ({} reads, {} writes)",
        transformed.transparent_test().length().operations,
        transformed.transparent_test().length().reads,
        transformed.transparent_test().length().writes,
    );
    println!(
        "signature prediction: {} operations per word",
        transformed
            .signature_prediction()
            .expect("TWM_TA has a prediction phase")
            .length()
            .operations
    );

    // 3. Run the transparent BIST session on a fault-free memory holding
    //    arbitrary data: nothing is detected and the content is preserved.
    //    `run_scheme_session` accepts any scheme's transform.
    let mut healthy = MemoryBuilder::new(256, width)
        .random_content(0xFEED)
        .build()?;
    let before = healthy.content();
    let outcome = run_scheme_session(&transformed, &mut healthy, Misr::standard(width))?;
    println!(
        "\nfault-free memory   : detected = {}",
        outcome.fault_detected()
    );
    println!("content preserved   : {}", outcome.content_preserved);
    assert!(!outcome.fault_detected());
    assert_eq!(healthy.content(), before);

    // 4. Inject a transition fault that appeared during the product's life
    //    and run the same periodic test again.
    let mut aged = MemoryBuilder::new(256, width)
        .random_content(0xFEED)
        .fault(Fault::transition(
            BitAddress::new(97, 5),
            Transition::Rising,
        ))
        .build()?;
    let outcome = run_scheme_session(&transformed, &mut aged, Misr::standard(width))?;
    println!(
        "\naged memory         : detected = {}",
        outcome.fault_detected()
    );
    println!(
        "signatures          : predicted {} vs observed {}",
        outcome.predicted_signature, outcome.test_signature
    );
    assert!(outcome.fault_detected());

    // 5. Localise the defect from the read log of a diagnostic re-run.
    let mut diagnostic_run = MemoryBuilder::new(256, width)
        .random_content(0xFEED)
        .fault(Fault::transition(
            BitAddress::new(97, 5),
            Transition::Rising,
        ))
        .build()?;
    let log = execute(transformed.transparent_test(), &mut diagnostic_run)?;
    let diagnosis = diagnose(&log);
    let suspect = diagnosis.primary_suspect().expect("fault was detected");
    println!(
        "diagnosis           : word {}, bit {} ({} mismatching reads)",
        suspect.cell.word, suspect.cell.bit, suspect.mismatches
    );
    assert_eq!(suspect.cell, BitAddress::new(97, 5));

    Ok(())
}
