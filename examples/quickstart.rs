//! Quickstart: transform a bit-oriented march test into a transparent
//! word-oriented march test, run it on a simulated embedded memory, and see
//! both the fault-free pass and the detection of an injected fault.
//!
//! Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use twm::bist::flow::run_transparent_session;
use twm::bist::{diagnose, execute, Misr};
use twm::core::TwmTransformer;
use twm::march::algorithms::march_c_minus;
use twm::mem::{BitAddress, Fault, MemoryBuilder, Transition};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a bit-oriented march test and a word width.
    let bmarch = march_c_minus();
    let width = 16;
    println!("bit-oriented input  : {} = {bmarch}", bmarch.name());

    // 2. Transform it with the paper's TWM_TA algorithm.
    let transformed = TwmTransformer::new(width)?.transform(&bmarch)?;
    println!("\nTSMarch             : {}", transformed.tsmarch());
    println!("ATMarch             : {}", transformed.atmarch());
    println!(
        "TWMarch             : {} operations per word ({} reads, {} writes)",
        transformed.transparent_test().length().operations,
        transformed.transparent_test().length().reads,
        transformed.transparent_test().length().writes,
    );
    println!(
        "signature prediction: {} operations per word",
        transformed.signature_prediction().length().operations
    );

    // 3. Run the transparent BIST session on a fault-free memory holding
    //    arbitrary data: nothing is detected and the content is preserved.
    let mut healthy = MemoryBuilder::new(256, width)
        .random_content(0xFEED)
        .build()?;
    let before = healthy.content();
    let outcome = run_transparent_session(
        transformed.transparent_test(),
        transformed.signature_prediction(),
        &mut healthy,
        Misr::standard(width),
    )?;
    println!(
        "\nfault-free memory   : detected = {}",
        outcome.fault_detected()
    );
    println!("content preserved   : {}", outcome.content_preserved);
    assert!(!outcome.fault_detected());
    assert_eq!(healthy.content(), before);

    // 4. Inject a transition fault that appeared during the product's life
    //    and run the same periodic test again.
    let mut aged = MemoryBuilder::new(256, width)
        .random_content(0xFEED)
        .fault(Fault::transition(
            BitAddress::new(97, 5),
            Transition::Rising,
        ))
        .build()?;
    let outcome = run_transparent_session(
        transformed.transparent_test(),
        transformed.signature_prediction(),
        &mut aged,
        Misr::standard(width),
    )?;
    println!(
        "\naged memory         : detected = {}",
        outcome.fault_detected()
    );
    println!(
        "signatures          : predicted {} vs observed {}",
        outcome.predicted_signature, outcome.test_signature
    );
    assert!(outcome.fault_detected());

    // 5. Localise the defect from the read log of a diagnostic re-run.
    let mut diagnostic_run = MemoryBuilder::new(256, width)
        .random_content(0xFEED)
        .fault(Fault::transition(
            BitAddress::new(97, 5),
            Transition::Rising,
        ))
        .build()?;
    let log = execute(transformed.transparent_test(), &mut diagnostic_run)?;
    let diagnosis = diagnose(&log);
    let suspect = diagnosis.primary_suspect().expect("fault was detected");
    println!(
        "diagnosis           : word {}, bit {} ({} mismatching reads)",
        suspect.cell.word, suspect.cell.bit, suspect.mismatches
    );
    assert_eq!(suspect.cell, BitAddress::new(97, 5));

    Ok(())
}
