//! Compares the transparent-test schemes — Scheme 1 (Nicolaidis
//! word-oriented, \[12\]), Scheme 2 (TOMT-like walk, \[13\]) and the paper's
//! TWM_TA — analytically (operations per word), by actually running the
//! generated tests on the memory simulator and counting accesses, and by
//! measuring fault coverage over a shared sampled fault universe.
//!
//! Everything is driven by the [`SchemeRegistry`] and the one-call
//! [`scheme_matrix`] comparison grid: adding a scheme to the registry adds
//! a row/column to every table below.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example scheme_comparison
//! ```

use twm::core::{SchemeId, SchemeRegistry};
use twm::coverage::{scheme_matrix, ContentPolicy, MatrixOptions, UniverseBuilder};
use twm::march::algorithms::{march_c_minus, march_u};
use twm::mem::MemoryConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let words = 64usize;
    println!("memory size: {words} words\n");

    for bmarch in [march_c_minus(), march_u()] {
        println!("== {} ==", bmarch.name());
        println!(
            "{:>6} {:>16} {:>16} {:>16} | {:>14} {:>14} {:>14}",
            "W",
            "scheme1 (form)",
            "scheme2 (form)",
            "proposed (form)",
            "scheme1 (run)",
            "scheme2 (run)",
            "proposed (run)"
        );
        for width in [8usize, 16, 32, 64] {
            let registry = SchemeRegistry::comparison(width)?;
            let config = MemoryConfig::new(words, width)?;
            // A small shared universe keeps the per-width grids cheap; the
            // full coverage comparison below uses a dense sample.
            let probe = UniverseBuilder::new(config)
                .stuck_at()
                .transition()
                .sample_per_class(24, 7)
                .build();
            // `scheme_matrix` runs each scheme's full fault-free session on
            // the simulator (asserting content preservation) and counts the
            // operations actually performed.
            let matrix = scheme_matrix(
                &registry,
                &bmarch,
                config,
                &probe,
                MatrixOptions {
                    content: ContentPolicy::Random { seed: 7 },
                    ..MatrixOptions::default()
                },
            )?;
            for row in &matrix.rows {
                assert!(row.content_preserved, "{} must be transparent", row.name);
                assert_eq!(row.coverage.total_coverage(), 1.0);
            }

            let length = bmarch.length();
            let form = |id: SchemeId| registry.get(id).unwrap().closed_form(length).total() * words;
            let run = |id: SchemeId| matrix.row(id).unwrap().session_operations;
            println!(
                "{:>6} {:>16} {:>16} {:>16} | {:>14} {:>14} {:>14}",
                width,
                form(SchemeId::Scheme1),
                form(SchemeId::Tomt),
                form(SchemeId::TwmTa),
                run(SchemeId::Scheme1),
                run(SchemeId::Tomt),
                run(SchemeId::TwmTa),
            );
        }
        println!();
    }
    println!("(form) = closed-form per-word complexity x N;  (run) = operations measured on the simulator");

    // The cost comparison above is only half the story: the paper's claim
    // is lower cost at *equal* fault coverage. Measure it with one
    // scheme_matrix call over a dense sampled universe (exact-compare
    // oracle, identical pseudo-random initial content for every scheme).
    println!("\n== measured fault coverage (16x8 memory, sampled universe) ==");
    let width = 8usize;
    let config = MemoryConfig::new(16, width)?;
    let faults = UniverseBuilder::new(config)
        .all_classes()
        .sample_per_class(120, 41)
        .build();
    let matrix = scheme_matrix(
        &SchemeRegistry::comparison(width)?,
        &march_c_minus(),
        config,
        &faults,
        MatrixOptions {
            content: ContentPolicy::Random { seed: 2025 },
            ..MatrixOptions::default()
        },
    )?;
    println!(
        "{:<44} {:>10} {:>10}",
        "scheme (transparent test)", "coverage", "ops/word"
    );
    let label = |id: SchemeId| match id {
        SchemeId::Scheme1 => "scheme 1 (Nicolaidis)",
        SchemeId::Tomt => "scheme 2 (TOMT-like walk)",
        SchemeId::TwmTa => "proposed TWM_TA (TWMarch)",
        _ => "other",
    };
    for row in &matrix.rows {
        println!(
            "{:<44} {:>9.2}% {:>10}",
            label(row.scheme),
            row.coverage.total_coverage() * 100.0,
            row.exact().tcm
        );
    }
    println!(
        "({} faults; sampled SAF/TF/CFst/CFid/CFin universe)",
        faults.len()
    );
    Ok(())
}
