//! Compares the three transparent-test schemes — Scheme 1 (Nicolaidis
//! word-oriented, \[12\]), Scheme 2 (TOMT-like walk, \[13\]) and the paper's
//! TWM_TA — analytically (operations per word), by actually running the
//! generated tests on the memory simulator and counting accesses, and by
//! measuring fault coverage with one [`CoverageEngine`] per scheme over a
//! shared sampled fault universe.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example scheme_comparison
//! ```

use twm::bist::execute;
use twm::core::complexity::{proposed_formula, scheme1_formula, scheme2_formula};
use twm::core::tomt::tomt_like_test;
use twm::core::{Scheme1Transformer, TwmTransformer};
use twm::coverage::{ContentPolicy, CoverageEngine, UniverseBuilder};
use twm::march::algorithms::{march_c_minus, march_u};
use twm::mem::{MemoryBuilder, MemoryConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let words = 64usize;
    println!("memory size: {words} words\n");

    for bmarch in [march_c_minus(), march_u()] {
        println!("== {} ==", bmarch.name());
        println!(
            "{:>6} {:>16} {:>16} {:>16} | {:>14} {:>14} {:>14}",
            "W",
            "scheme1 (form)",
            "scheme2 (form)",
            "proposed (form)",
            "scheme1 (run)",
            "scheme2 (run)",
            "proposed (run)"
        );
        for width in [8usize, 16, 32, 64] {
            let length = bmarch.length();
            let f1 = scheme1_formula(length, width).total();
            let f2 = scheme2_formula(width).total();
            let fp = proposed_formula(length, width).total();

            // Execute each scheme's transparent test on a simulator instance
            // and count the accesses actually performed.
            let scheme1 = Scheme1Transformer::new(width)?.transform(&bmarch)?;
            let proposed = TwmTransformer::new(width)?.transform(&bmarch)?;
            let tomt = tomt_like_test(width)?;

            // `check` asserts the fault-free/transparency invariants; the
            // signature-prediction phases are read-only sequences whose
            // expectations only make sense inside the two-phase BIST flow,
            // so they are executed purely to count their accesses.
            let run = |test: &twm::march::MarchTest,
                       check: bool|
             -> Result<usize, Box<dyn std::error::Error>> {
                let mut mem = MemoryBuilder::new(words, width).random_content(7).build()?;
                let result = execute(test, &mut mem)?;
                if check {
                    assert!(!result.detected());
                    assert!(result.content_preserved());
                }
                Ok(result.operations())
            };

            let r1 = run(scheme1.transparent_test(), true)?
                + run(scheme1.signature_prediction(), false)?;
            let r2 = run(&tomt, true)?;
            let rp = run(proposed.transparent_test(), true)?
                + run(proposed.signature_prediction(), false)?;

            println!(
                "{:>6} {:>16} {:>16} {:>16} | {:>14} {:>14} {:>14}",
                width,
                f1 * words,
                f2 * words,
                fp * words,
                r1,
                r2,
                rp
            );
        }
        println!();
    }
    println!("(form) = closed-form per-word complexity x N;  (run) = operations measured on the simulator");

    // The cost comparison above is only half the story: the paper's claim
    // is lower cost at *equal* fault coverage. Measure it with one engine
    // per scheme over the same sampled universe (exact-compare oracle,
    // identical pseudo-random initial content).
    println!("\n== measured fault coverage (16x8 memory, sampled universe) ==");
    let width = 8usize;
    let config = MemoryConfig::new(16, width)?;
    let faults = UniverseBuilder::new(config)
        .all_classes()
        .sample_per_class(120, 41)
        .build();
    let bmarch = march_c_minus();
    let scheme1 = Scheme1Transformer::new(width)?.transform(&bmarch)?;
    let proposed = TwmTransformer::new(width)?.transform(&bmarch)?;
    let tomt = tomt_like_test(width)?;
    println!(
        "{:<44} {:>10} {:>10}",
        "scheme (transparent test)", "coverage", "ops/word"
    );
    for (label, test) in [
        ("scheme 1 (Nicolaidis)", scheme1.transparent_test()),
        ("scheme 2 (TOMT-like walk)", &tomt),
        ("proposed TWM_TA (TWMarch)", proposed.transparent_test()),
    ] {
        let engine = CoverageEngine::builder(config)
            .test(test)
            .content(ContentPolicy::Random { seed: 2025 })
            .build()?;
        let report = engine.report(&faults)?;
        println!(
            "{:<44} {:>9.2}% {:>10}",
            label,
            report.total_coverage() * 100.0,
            test.operations_per_word()
        );
    }
    println!(
        "({} faults; sampled SAF/TF/CFst/CFid/CFin universe)",
        faults.len()
    );
    Ok(())
}
