//! Reproduces the analysis behind the paper's Figure 1, driven through the
//! [`CoverageEngine`] — one engine per march test serves both the
//! state-traversal analyses shown here and any fault-injection experiment.
//!
//! * Figure 1(a): a march test detects 100 % of the coupling faults between
//!   two arbitrary cells only if it drives the pair through all states and
//!   excites every aggressor-transition / victim-value condition. March C−
//!   covers all eight conditions; MATS+ does not.
//! * Figure 1(b): inside a word, the transparent TWMarch covers the four
//!   intra-word pair conditions (both-complemented, restored, mixed,
//!   restored-from-mixed) for every bit pair and any initial content, while
//!   TSMarch alone covers only the two solid ones — ATMarch closes the gap.
//!
//! Run with:
//!
//! ```text
//! cargo run --example state_coverage
//! ```

use twm::core::{SchemeId, SchemeRegistry, SchemeTransform};
use twm::coverage::CoverageEngine;
use twm::march::algorithms::{march_c_minus, mats_plus};
use twm::mem::{MemoryConfig, Word};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Figure 1(a): two-cell excitation conditions (bit-oriented) ==");
    let bit_config = MemoryConfig::bit_oriented(16)?;
    for test in [march_c_minus(), mats_plus()] {
        let engine = CoverageEngine::builder(bit_config).test(&test).build()?;
        let coverage = engine.cell_pair_states(2, 9)?;
        println!(
            "{:<10} states visited: {}/4, coupling conditions covered: {}/8",
            test.name(),
            coverage.states_visited.len(),
            coverage.conditions_covered.len()
        );
        if !coverage.all_conditions_covered() {
            println!("           missing: {:?}", coverage.missing_conditions());
        }
    }

    println!("\n== Figure 1(b): intra-word pair conditions (word-oriented, W = 8) ==");
    let width = 8;
    let word_config = MemoryConfig::new(16, width)?;
    let transformed = SchemeRegistry::all(width)?.transform(SchemeId::TwmTa, &march_c_minus())?;
    // One engine for the partial test (TSMarch only), one for the full
    // transparent TWMarch.
    let tsmarch = CoverageEngine::builder(word_config)
        .test(transformed.stage(SchemeTransform::STAGE_TSMARCH).unwrap())
        .build()?;
    let twmarch = CoverageEngine::builder(word_config)
        .test(transformed.transparent_test())
        .build()?;
    let initial = Word::from_bits(0b1011_0010, width)?;
    println!("initial word content: {initial}");
    println!(
        "{:>10} {:>22} {:>22}",
        "bit pair", "TSMarch conditions", "TWMarch conditions"
    );
    for (a, b) in [(0usize, 1usize), (1, 2), (0, 7), (3, 6)] {
        let partial = tsmarch.intra_word_pair_states(a, b, initial)?;
        let full = twmarch.intra_word_pair_states(a, b, initial)?;
        println!(
            "{:>10} {:>22} {:>22}",
            format!("({a},{b})"),
            format!("{}/4", partial.covered_count()),
            format!("{}/4", full.covered_count())
        );
        assert!(full.all_covered());
    }
    println!("\nATMarch closes the intra-word gap for every pair, as Section 5 argues.");
    Ok(())
}
