//! Reproduces the analysis behind the paper's Figure 1.
//!
//! * Figure 1(a): a march test detects 100 % of the coupling faults between
//!   two arbitrary cells only if it drives the pair through all states and
//!   excites every aggressor-transition / victim-value condition. March C−
//!   covers all eight conditions; MATS+ does not.
//! * Figure 1(b): inside a word, the transparent TWMarch covers the four
//!   intra-word pair conditions (both-complemented, restored, mixed,
//!   restored-from-mixed) for every bit pair and any initial content, while
//!   TSMarch alone covers only the two solid ones — ATMarch closes the gap.
//!
//! Run with:
//!
//! ```text
//! cargo run --example state_coverage
//! ```

use twm::core::TwmTransformer;
use twm::coverage::states::{analyze_cell_pair, analyze_intra_word_pair};
use twm::march::algorithms::{march_c_minus, mats_plus};
use twm::mem::Word;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Figure 1(a): two-cell excitation conditions (bit-oriented) ==");
    for test in [march_c_minus(), mats_plus()] {
        let coverage = analyze_cell_pair(&test, 2, 9, 16)?;
        println!(
            "{:<10} states visited: {}/4, coupling conditions covered: {}/8",
            test.name(),
            coverage.states_visited.len(),
            coverage.conditions_covered.len()
        );
        if !coverage.all_conditions_covered() {
            println!("           missing: {:?}", coverage.missing_conditions());
        }
    }

    println!("\n== Figure 1(b): intra-word pair conditions (word-oriented, W = 8) ==");
    let width = 8;
    let transformed = TwmTransformer::new(width)?.transform(&march_c_minus())?;
    let initial = Word::from_bits(0b1011_0010, width)?;
    println!("initial word content: {initial}");
    println!(
        "{:>10} {:>22} {:>22}",
        "bit pair", "TSMarch conditions", "TWMarch conditions"
    );
    for (a, b) in [(0usize, 1usize), (1, 2), (0, 7), (3, 6)] {
        let partial = analyze_intra_word_pair(transformed.tsmarch(), a, b, initial)?;
        let full = analyze_intra_word_pair(transformed.transparent_test(), a, b, initial)?;
        println!(
            "{:>10} {:>22} {:>22}",
            format!("({a},{b})"),
            format!("{}/4", partial.covered_count()),
            format!("{}/4", full.covered_count())
        );
        assert!(full.all_covered());
    }
    println!("\nATMarch closes the intra-word gap for every pair, as Section 5 argues.");
    Ok(())
}
