//! March-test minimisation with `twm::search`: shrink March C− at W = 32
//! while keeping **100 % stuck-at + transition coverage**, scored by the
//! transparent session cost the paper's schemes would actually pay.
//!
//! Everything is deterministic — greedy minimisation draws no randomness
//! and the annealing polish runs from a fixed seed — so repeated runs
//! print the same tests and the same numbers (CI runs this example as a
//! smoke check).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example test_minimisation
//! ```

use twm::core::{SchemeId, SchemeRegistry};
use twm::coverage::UniverseBuilder;
use twm::march::algorithms::march_c_minus;
use twm::mem::MemoryConfig;
use twm::search::{
    anneal, minimise_greedy, AnnealOptions, GreedyOptions, Objective, ObjectiveOptions,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let width = 32;
    let words = 8;
    let config = MemoryConfig::new(words, width)?;
    let seed_test = march_c_minus();

    // Every stuck-at and transition fault of the memory; candidates must
    // keep detecting all of them.
    let universe = UniverseBuilder::new(config).stuck_at().transition().build();
    let registry = SchemeRegistry::comparison(width)?;
    let objective = Objective::new(
        config,
        universe,
        Some(registry),
        ObjectiveOptions::default(),
    )?;

    let seed_score = objective
        .score(&seed_test)?
        .expect("March C- is transformable by every scheme");
    println!(
        "memory {words}x{width}, universe {} faults (SAF + TF)",
        seed_score.total_faults
    );
    println!(
        "seed    {}: {} ops/word, transparent cost {}, coverage {:.1}%",
        seed_test.name(),
        seed_score.test_ops,
        seed_score.cost(),
        seed_score.coverage() * 100.0
    );

    // Greedy drop-one-op minimisation under the full-coverage floor.
    let outcome = minimise_greedy(&objective, &seed_test, &GreedyOptions::default())?;
    let minimised = &outcome.best;
    println!("\naccepted deletions:");
    for entry in outcome.log.iter().skip(1) {
        let mutation = entry.mutation.expect("non-seed entries carry a mutation");
        println!(
            "  step {}: {:<16} -> {} ops/word, cost {}   {}",
            entry.step, mutation, entry.score.test_ops, entry.score.scheme_cost, entry.notation
        );
    }
    println!(
        "\nminimised: {}  ({} ops/word, transparent cost {}, coverage {:.1}%, \
         {} candidates evaluated)",
        minimised.test,
        minimised.score.test_ops,
        minimised.score.cost(),
        minimised.score.coverage() * 100.0,
        outcome.evaluated
    );

    // A fixed-seed annealing polish explores non-deletion moves (order
    // flips, splits, merges) from the greedy result.
    let polish = anneal(
        &objective,
        &minimised.test,
        &AnnealOptions {
            seed: 2025,
            steps: 60,
            ..AnnealOptions::default()
        },
    )?;
    println!(
        "annealing polish (seed 2025): {} ops/word, transparent cost {} \
         ({} more candidates evaluated)",
        polish.best.score.test_ops,
        polish.best.score.cost(),
        polish.evaluated
    );

    // The (coverage, cost) Pareto front collected along the way.
    println!("\nPareto front (coverage vs transparent cost):");
    for point in polish.front.points() {
        println!(
            "  {:>5.1}% coverage at cost {:>3} ({} ops/word): {}",
            point.score.coverage() * 100.0,
            point.score.cost(),
            point.score.test_ops,
            point.test
        );
    }

    // What the winner costs through the paper's own scheme.
    let twm_ta = objective
        .registry()
        .and_then(|r| r.get(SchemeId::TwmTa))
        .expect("comparison registry registers TWM_TA");
    let before = twm_ta.transform(&seed_test)?.exact_complexity();
    let after = twm_ta.transform(&polish.best.test)?.exact_complexity();
    println!(
        "\nTWM_TA session cost per word: {} -> {} (TCM {} -> {}, TCP {} -> {})",
        before.total(),
        after.total(),
        before.tcm,
        after.tcm,
        before.tcp,
        after.tcp
    );

    // The acceptance contract this example is CI-gated on: a strictly
    // shorter test with full SAF+TF coverage, reproducibly.
    assert!(polish.best.score.full_coverage(), "coverage regressed");
    assert!(
        polish.best.score.test_ops < seed_score.test_ops,
        "no strict reduction found"
    );
    assert!(polish.best.score.cost() < seed_score.cost());
    println!(
        "\nOK: {} ops/word -> {} ops/word at 100% SAF+TF coverage",
        seed_score.test_ops, polish.best.score.test_ops
    );
    Ok(())
}
