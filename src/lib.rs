//! # twm — transparent word-oriented march tests for embedded memories
//!
//! Facade crate re-exporting the whole TWM workspace, a reproduction of
//! *"An Efficient Transparent Test Scheme for Embedded Word-Oriented
//! Memories"* (Li, Tseng, Wey — DATE 2005).
//!
//! The workspace is organised in focused crates, all re-exported here:
//!
//! * [`mem`] — word-oriented memory functional simulator with fault
//!   injection (SAF, TF, CFst, CFid, CFin).
//! * [`march`] — march-test framework: operations, elements, notation,
//!   standard algorithms (March C−, March U, …) and data backgrounds.
//! * [`core`] — the paper's contribution: the TWM_TA transformation that
//!   turns a bit-oriented march test into an efficient transparent
//!   word-oriented march test, plus the baseline schemes it is compared
//!   against and the complexity model behind the paper's tables.
//! * [`bist`] — transparent BIST engine: march executor, MISR signature
//!   analyzer, signature-prediction flow and periodic idle-window
//!   controller.
//! * [`coverage`] — fault-universe enumeration and the
//!   [`CoverageEngine`](coverage::CoverageEngine): one reusable, streaming
//!   evaluation surface for coverage reports, per-fault verdict streams and
//!   test-vs-test comparisons, including the two-cell state analysis of the
//!   paper's Figure 1.
//!
//! ## Quickstart
//!
//! ```
//! use twm::march::algorithms::march_c_minus;
//! use twm::core::{complexity, TwmTransformer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Transform bit-oriented March C− for a memory with 32-bit words.
//! let bmarch = march_c_minus();
//! let transformed = TwmTransformer::new(32)?.transform(&bmarch)?;
//!
//! // Operations per word of the transparent test: the paper's
//! // TCM = M + 5·log2(W) = 10 + 25 = 35.
//! assert_eq!(transformed.transparent_test().operations_per_word(), 35);
//!
//! // The paper's headline comparison: ≈56% of Scheme 1 and ≈19% of
//! // Scheme 2 (TOMT) for March C− on 32-bit words.
//! let headline = complexity::headline(&bmarch, 32);
//! assert!((headline.ratio_vs_scheme1 - 0.56).abs() < 0.01);
//! assert!((headline.ratio_vs_scheme2 - 0.19).abs() < 0.01);
//! # Ok(())
//! # }
//! ```
//!
//! ## Measuring fault coverage
//!
//! Simulation experiments go through one reusable
//! [`CoverageEngine`](coverage::CoverageEngine), built once per
//! `(memory shape, march test)` pair and reused across universes:
//!
//! ```
//! use twm::coverage::{ContentPolicy, CoverageEngine, UniverseBuilder};
//! use twm::core::TwmTransformer;
//! use twm::march::algorithms::march_c_minus;
//! use twm::mem::MemoryConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = MemoryConfig::new(16, 4)?;
//! let test = TwmTransformer::new(4)?.transform(&march_c_minus())?;
//! let engine = CoverageEngine::builder(config)
//!     .test(test.transparent_test())
//!     .content(ContentPolicy::Random { seed: 1 })
//!     .build()?;
//! let faults = UniverseBuilder::new(config).stuck_at().transition().build();
//! assert_eq!(engine.report(&faults)?.total_coverage(), 1.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use twm_bist as bist;
pub use twm_core as core;
pub use twm_coverage as coverage;
pub use twm_march as march;
pub use twm_mem as mem;
