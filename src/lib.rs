//! # twm — transparent word-oriented march tests for embedded memories
//!
//! Facade crate re-exporting the whole TWM workspace, a reproduction of
//! *"An Efficient Transparent Test Scheme for Embedded Word-Oriented
//! Memories"* (Li, Tseng, Wey — DATE 2005).
//!
//! The workspace is organised in focused crates, all re-exported here:
//!
//! * [`mem`] — word-oriented memory functional simulator with fault
//!   injection (SAF, TF, CFst, CFid, CFin).
//! * [`march`] — march-test framework: operations, elements, notation,
//!   standard algorithms (March C−, March U, …) and data backgrounds.
//! * [`core`] — the paper's contribution behind **one transformation
//!   surface**: the [`TransparentScheme`](core::TransparentScheme) trait
//!   and the [`SchemeRegistry`](core::SchemeRegistry), with the paper's
//!   TWM_TA next to the baseline schemes it is compared against
//!   (Nicolaidis, Scheme 1, TOMT), plus the registry-driven complexity
//!   model behind the paper's tables.
//! * [`bist`] — transparent BIST engine: march executor, MISR signature
//!   analyzer, the scheme-generic
//!   [`run_scheme_session`](bist::run_scheme_session) flow and periodic
//!   idle-window controller.
//! * [`coverage`] — fault-universe enumeration and the
//!   [`CoverageEngine`](coverage::CoverageEngine): one reusable, streaming
//!   evaluation surface for coverage reports, per-fault verdict streams and
//!   test-vs-test comparisons — including
//!   [`CoverageEngine::for_scheme`](coverage::CoverageEngine::for_scheme)
//!   and the one-call [`scheme_matrix`](coverage::scheme_matrix) comparison
//!   grid over every registered scheme.
//! * [`search`] — march-test generation & minimisation: a deterministic,
//!   seeded, parallel search over [`MarchTest`](march::MarchTest)
//!   candidates (greedy drop-one-op minimisation,
//!   [`beam_search`](search::beam_search), seeded
//!   [`anneal`](search::anneal())ing) scored by coverage over a fault
//!   universe **and** the registry-driven transparent session cost, with a
//!   (coverage, cost) Pareto front and a full provenance log.
//!
//! ## Quickstart
//!
//! Every transformation goes through the scheme registry:
//!
//! ```
//! use twm::core::{complexity, SchemeId, SchemeRegistry};
//! use twm::march::algorithms::march_c_minus;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // All schemes for 32-bit words, one surface.
//! let registry = SchemeRegistry::all(32)?;
//!
//! // Transform bit-oriented March C− with the paper's TWM_TA.
//! let bmarch = march_c_minus();
//! let transformed = registry.transform(SchemeId::TwmTa, &bmarch)?;
//!
//! // Operations per word of the transparent test: the paper's
//! // TCM = M + 5·log2(W) = 10 + 25 = 35.
//! assert_eq!(transformed.transparent_test().operations_per_word(), 35);
//!
//! // The paper's headline comparison: ≈56% of Scheme 1 and ≈19% of
//! // Scheme 2 (TOMT) for March C− on 32-bit words, straight from the
//! // registry entries.
//! let headline = complexity::headline(&registry, &bmarch)?;
//! assert!((headline.ratio_vs_scheme1 - 0.56).abs() < 0.01);
//! assert!((headline.ratio_vs_scheme2 - 0.19).abs() < 0.01);
//! # Ok(())
//! # }
//! ```
//!
//! ## Measuring fault coverage
//!
//! Simulation experiments go through one reusable
//! [`CoverageEngine`](coverage::CoverageEngine) per scheme — or through
//! [`scheme_matrix`](coverage::scheme_matrix), which compares every
//! registered scheme over a shared fault universe in one call:
//!
//! ```
//! use twm::coverage::{scheme_matrix, MatrixOptions, UniverseBuilder};
//! use twm::core::{SchemeId, SchemeRegistry};
//! use twm::march::algorithms::march_c_minus;
//! use twm::mem::MemoryConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = MemoryConfig::new(16, 4)?;
//! let registry = SchemeRegistry::comparison(4)?;
//! let faults = UniverseBuilder::new(config).stuck_at().transition().build();
//! let matrix = scheme_matrix(
//!     &registry,
//!     &march_c_minus(),
//!     config,
//!     &faults,
//!     MatrixOptions::default(),
//! )?;
//! // Every scheme detects all stuck-at and transition faults ...
//! for row in &matrix.rows {
//!     assert_eq!(row.coverage.total_coverage(), 1.0);
//!     assert!(row.content_preserved);
//! }
//! // ... and the paper's scheme is the cheapest per word.
//! let proposed = matrix.row(SchemeId::TwmTa).unwrap();
//! let scheme1 = matrix.row(SchemeId::Scheme1).unwrap();
//! assert!(proposed.exact().total() < scheme1.exact().total());
//! # Ok(())
//! # }
//! ```
//!
//! ## Searching for better march tests
//!
//! The coverage kernel is fast enough to sit in a search inner loop:
//! [`search`] minimises (or generates) bit-oriented march tests, scoring
//! every candidate on fault coverage **and** the transparent session cost
//! the registered schemes would pay:
//!
//! ```
//! use twm::core::SchemeRegistry;
//! use twm::coverage::UniverseBuilder;
//! use twm::march::algorithms::march_c_minus;
//! use twm::mem::MemoryConfig;
//! use twm::search::{minimise_greedy, GreedyOptions, Objective, ObjectiveOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = MemoryConfig::new(8, 4)?;
//! let universe = UniverseBuilder::new(config).stuck_at().transition().build();
//! let objective = Objective::new(
//!     config,
//!     universe,
//!     Some(SchemeRegistry::comparison(4)?),
//!     ObjectiveOptions::default(),
//! )?;
//! let outcome = minimise_greedy(&objective, &march_c_minus(), &GreedyOptions::default())?;
//! assert!(outcome.best.score.test_ops < 10); // shorter than March C-
//! assert!(outcome.best.score.full_coverage()); // still 100% SAF+TF
//! # Ok(())
//! # }
//! ```
//!
//! `examples/test_minimisation.rs` runs the full W = 32 experiment, and
//! `benches/search.rs` measures candidate-evaluation throughput.

#![warn(missing_docs)]

pub use twm_bist as bist;
pub use twm_core as core;
pub use twm_coverage as coverage;
pub use twm_march as march;
pub use twm_mem as mem;
pub use twm_search as search;
