//! # twm — transparent word-oriented march tests for embedded memories
//!
//! Facade crate re-exporting the whole TWM workspace, a reproduction of
//! *"An Efficient Transparent Test Scheme for Embedded Word-Oriented
//! Memories"* (Li, Tseng, Wey — DATE 2005).
//!
//! The workspace is organised in focused crates, all re-exported here:
//!
//! * [`mem`] — word-oriented memory functional simulator with fault
//!   injection (SAF, TF, CFst, CFid, CFin), plus the bit-parallel
//!   [`Lanes`](mem::Lanes)/[`PackedArena`](mem::PackedArena) storage that
//!   simulates up to 64 single-bit faults per machine word in one pass.
//! * [`march`] — march-test framework: operations, elements, notation,
//!   standard algorithms (March C−, March U, …) and data backgrounds.
//! * [`core`] — the paper's contribution behind **one transformation
//!   surface**: the [`TransparentScheme`](core::TransparentScheme) trait
//!   and the [`SchemeRegistry`](core::SchemeRegistry), with the paper's
//!   TWM_TA next to the baseline schemes it is compared against
//!   (Nicolaidis, Scheme 1, TOMT), plus the registry-driven complexity
//!   model behind the paper's tables.
//! * [`bist`] — transparent BIST engine: march executor, MISR signature
//!   analyzer, the scheme-generic
//!   [`run_scheme_session`](bist::run_scheme_session) flow and periodic
//!   idle-window controller.
//! * [`coverage`] — fault-universe enumeration and the
//!   [`CoverageEngine`](coverage::CoverageEngine): one reusable, streaming
//!   evaluation surface for coverage reports, per-fault verdict streams and
//!   test-vs-test comparisons — including
//!   [`CoverageEngine::for_scheme`](coverage::CoverageEngine::for_scheme)
//!   and the one-call [`scheme_matrix`](coverage::scheme_matrix) comparison
//!   grid over every registered scheme. SAF/TF faults are evaluated on the
//!   bit-parallel lane-batched kernel (64 faults per march execution),
//!   bit-identical to scalar evaluation.
//! * [`search`] — march-test generation & minimisation: a deterministic,
//!   seeded, parallel search over [`MarchTest`](march::MarchTest)
//!   candidates (greedy drop-one-op minimisation,
//!   [`beam_search`](search::beam_search), seeded
//!   [`anneal`](search::anneal())ing) scored by coverage over a fault
//!   universe **and** the registry-driven transparent session cost, with a
//!   (coverage, cost) Pareto front and a full provenance log.
//! * [`repair`] — the diagnosis-to-repair loop **detect → localise →
//!   allocate spares → verify**:
//!   [`SignatureDictionary`](repair::SignatureDictionary) (fault → MISR
//!   signature trail, inverted into ambiguity classes, built in parallel
//!   and bit-identical for any thread count),
//!   [`DiagnosticSession`](repair::DiagnosticSession) (registry-driven
//!   follow-up sessions + targeted fault-local probes fused into ranked
//!   [`LocatedDefect`](repair::LocatedDefect)s),
//!   [`RepairAllocator`](repair::RepairAllocator) over
//!   [`RepairableMemory`](mem::RepairableMemory) spare words, and
//!   [`verify_repair`](repair::verify_repair) proving the signature comes
//!   back clean on the remapped memory.
//! * [`store`] — paged, disk-backed signature dictionaries: a
//!   checksummed fixed-size-page file format with prefix-compressed
//!   sorted index pages, a bounded-LRU [`Pager`](store::Pager), and
//!   [`PagedDictionary`](store::PagedDictionary) — the out-of-core
//!   sibling of [`SignatureDictionary`](repair::SignatureDictionary),
//!   answering the same [`TrailLookup`](repair::TrailLookup) queries
//!   bit-identically from disk (property-tested in
//!   `crates/store/tests/paged_equivalence.rs`).
//! * [`fleet`] — the fleet-scale diagnosis service: signature
//!   dictionaries sharded by `(memory shape, scheme, test fingerprint)`
//!   in a [`DictionaryStore`](fleet::DictionaryStore) with wire-format
//!   persistence, an LRU [`RuntimeCache`](fleet::RuntimeCache) of
//!   per-shard engines/transforms, and the transport-agnostic
//!   [`FleetService`](fleet::FleetService) whose
//!   [`DiagnoseBatch`](fleet::Request::DiagnoseBatch) fans device trail
//!   reports across worker threads — bit-identical to serial — and folds
//!   them into [`FleetStatistics`](fleet::FleetStatistics) (failure rates
//!   per fault class, ambiguity histograms, repair-rate-vs-spares
//!   curves).
//! * [`obs`] — std-only observability for all of the above: a
//!   process-wide [`Registry`](obs::Registry) of atomic counters, gauges
//!   and fixed-bucket histograms with Prometheus-style
//!   [text exposition](obs::MetricsReport::expose), plus hierarchical
//!   [`span`](obs::span)s/[`event`](obs::event)s behind a static gate
//!   (disabled tracing costs one relaxed atomic load). Instrumentation
//!   never changes results — coverage reports, batch diagnoses and paged
//!   lookups are bit-identical with observability on or off
//!   (property-tested in `tests/obs_non_interference.rs`) — and a live
//!   fleet server is scrapeable over TCP via
//!   [`Request::Metrics`](fleet::Request::Metrics) or pulled straight
//!   over HTTP from the std-only [`MetricsServer`](obs::MetricsServer)
//!   (`GET /metrics` + `/healthz`, wired in with
//!   [`FleetConfig::metrics_http`](fleet::FleetConfig)). Tracing can
//!   also feed the [`ProfilerSink`](obs::ProfilerSink), aggregating
//!   per-span self-time, and histograms summarise to p50/p90/p99
//!   [`QuantileSummary`](obs::QuantileSummary)s.
//!
//! ## Quickstart
//!
//! Every transformation goes through the scheme registry:
//!
//! ```
//! use twm::core::{complexity, SchemeId, SchemeRegistry};
//! use twm::march::algorithms::march_c_minus;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // All schemes for 32-bit words, one surface.
//! let registry = SchemeRegistry::all(32)?;
//!
//! // Transform bit-oriented March C− with the paper's TWM_TA.
//! let bmarch = march_c_minus();
//! let transformed = registry.transform(SchemeId::TwmTa, &bmarch)?;
//!
//! // Operations per word of the transparent test: the paper's
//! // TCM = M + 5·log2(W) = 10 + 25 = 35.
//! assert_eq!(transformed.transparent_test().operations_per_word(), 35);
//!
//! // The paper's headline comparison: ≈56% of Scheme 1 and ≈19% of
//! // Scheme 2 (TOMT) for March C− on 32-bit words, straight from the
//! // registry entries.
//! let headline = complexity::headline(&registry, &bmarch)?;
//! assert!((headline.ratio_vs_scheme1 - 0.56).abs() < 0.01);
//! assert!((headline.ratio_vs_scheme2 - 0.19).abs() < 0.01);
//! # Ok(())
//! # }
//! ```
//!
//! ## Measuring fault coverage
//!
//! Simulation experiments go through one reusable
//! [`CoverageEngine`](coverage::CoverageEngine) per scheme — or through
//! [`scheme_matrix`](coverage::scheme_matrix), which compares every
//! registered scheme over a shared fault universe in one call:
//!
//! ```
//! use twm::coverage::{scheme_matrix, MatrixOptions, UniverseBuilder};
//! use twm::core::{SchemeId, SchemeRegistry};
//! use twm::march::algorithms::march_c_minus;
//! use twm::mem::MemoryConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = MemoryConfig::new(16, 4)?;
//! let registry = SchemeRegistry::comparison(4)?;
//! let faults = UniverseBuilder::new(config).stuck_at().transition().build();
//! let matrix = scheme_matrix(
//!     &registry,
//!     &march_c_minus(),
//!     config,
//!     &faults,
//!     MatrixOptions::default(),
//! )?;
//! // Every scheme detects all stuck-at and transition faults ...
//! for row in &matrix.rows {
//!     assert_eq!(row.coverage.total_coverage(), 1.0);
//!     assert!(row.content_preserved);
//! }
//! // ... and the paper's scheme is the cheapest per word.
//! let proposed = matrix.row(SchemeId::TwmTa).unwrap();
//! let scheme1 = matrix.row(SchemeId::Scheme1).unwrap();
//! assert!(proposed.exact().total() < scheme1.exact().total());
//! # Ok(())
//! # }
//! ```
//!
//! Under the hood the engine packs stuck-at and transition faults 64 to a
//! `u64` (one bit-sliced lane per fault) and evaluates a whole batch in a
//! single march execution — ~20× faster than one-fault-per-pass on 64K-word
//! memories, and guaranteed bit-identical (property-tested in
//! `crates/coverage/tests/packed_equivalence.rs`). Coupling faults, whose
//! lanes would entangle across cells, transparently take the scalar path.
//! [`CoverageEngineBuilder::lane_batching`](coverage::CoverageEngineBuilder::lane_batching)`(false)`
//! pins the scalar kernel for A/B comparison, and
//! `cargo run --release -p twm-bench --bin perf_trajectory` measures both
//! (CI publishes the result as `BENCH_<pr>.json`).
//!
//! ## Searching for better march tests
//!
//! The coverage kernel is fast enough to sit in a search inner loop:
//! [`search`] minimises (or generates) bit-oriented march tests, scoring
//! every candidate on fault coverage **and** the transparent session cost
//! the registered schemes would pay:
//!
//! ```
//! use twm::core::SchemeRegistry;
//! use twm::coverage::UniverseBuilder;
//! use twm::march::algorithms::march_c_minus;
//! use twm::mem::MemoryConfig;
//! use twm::search::{minimise_greedy, GreedyOptions, Objective, ObjectiveOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = MemoryConfig::new(8, 4)?;
//! let universe = UniverseBuilder::new(config).stuck_at().transition().build();
//! let objective = Objective::new(
//!     config,
//!     universe,
//!     Some(SchemeRegistry::comparison(4)?),
//!     ObjectiveOptions::default(),
//! )?;
//! let outcome = minimise_greedy(&objective, &march_c_minus(), &GreedyOptions::default())?;
//! assert!(outcome.best.score.test_ops < 10); // shorter than March C-
//! assert!(outcome.best.score.full_coverage()); // still 100% SAF+TF
//! # Ok(())
//! # }
//! ```
//!
//! `examples/test_minimisation.rs` runs the full W = 32 experiment, and
//! `benches/search.rs` measures candidate-evaluation throughput.
//!
//! ## From a failing signature to a verified repair
//!
//! Periodic field test is only useful if a failure leads to action.
//! [`repair`] closes the loop: build a
//! [`SignatureDictionary`](repair::SignatureDictionary) once per
//! deployment, and when a session fails, localise, assign a spare word and
//! prove the signature clean again:
//!
//! ```
//! use twm::core::{SchemeId, SchemeRegistry};
//! use twm::coverage::{ContentPolicy, CoverageEngine, UniverseBuilder};
//! use twm::march::algorithms::march_c_minus;
//! use twm::mem::{BitAddress, Fault, FaultyMemory, MemoryConfig, RepairableMemory};
//! use twm::repair::{
//!     diagnose_and_repair, DiagnosticSession, DictionaryOptions, RepairAllocator,
//!     SignatureDictionary,
//! };
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = MemoryConfig::new(8, 4)?;
//! let registry = SchemeRegistry::comparison(4)?;
//! let engine = CoverageEngine::for_scheme(
//!     registry.get(SchemeId::TwmTa).unwrap(),
//!     &march_c_minus(),
//!     config,
//! )?
//! .content(ContentPolicy::Random { seed: 7 })
//! .build()?;
//! let universe = UniverseBuilder::new(config).stuck_at().transition().build();
//! let dictionary =
//!     SignatureDictionary::build(&engine, &universe, &DictionaryOptions::default())?;
//!
//! // A cell sticks at 1 in the field; the memory has two spare words.
//! let mut memory =
//!     FaultyMemory::with_faults(config, vec![Fault::stuck_at(BitAddress::new(3, 1), true)])?;
//! memory.fill_random(7);
//! let session = DiagnosticSession::new(&registry, &march_c_minus())?
//!     .with_dictionary(&dictionary)?;
//! let flow = diagnose_and_repair(
//!     &session,
//!     &RepairAllocator::default(),
//!     RepairableMemory::new(memory, 2)?,
//! )?;
//! assert_eq!(flow.localisation.defects[0].cell, BitAddress::new(3, 1));
//! assert!(flow.plan.fully_repairs());
//! assert!(flow.verification.clean());   // the periodic test passes again
//! # Ok(())
//! # }
//! ```
//!
//! `examples/diagnose_and_repair.rs` runs the full 8×32 flow (with
//! per-scheme diagnosability statistics) and `benches/repair.rs` measures
//! dictionary-build throughput and localisation latency.
//!
//! ## Serving a whole fleet
//!
//! One device diagnosing itself is the paper's flow; a deployment has
//! thousands reporting **trails only** to a maintenance service. [`fleet`]
//! is that service core — dictionaries per deployment triple, batched
//! trail diagnosis, repair plans verified by simulation, and fleet-level
//! statistics — transport-agnostic (a length-prefixed blocking TCP
//! front, [`TcpFront`](fleet::TcpFront)/[`FleetClient`](fleet::FleetClient),
//! is one thin wrapper away) and deterministic:
//!
//! ```
//! use twm::core::SchemeId;
//! use twm::coverage::ContentPolicy;
//! use twm::fleet::{DeviceReport, FleetService, Request, Response, ShardKey, UniverseSpec};
//! use twm::march::algorithms::march_c_minus;
//! use twm::mem::MemoryConfig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let service = FleetService::with_defaults()?;
//! let config = MemoryConfig::new(8, 4)?;
//!
//! // Build + register the shard's dictionary server-side.
//! let Response::Registered { shard, .. } = service.handle(Request::BuildDictionary {
//!     scheme: SchemeId::TwmTa,
//!     source: march_c_minus(),
//!     config,
//!     content: ContentPolicy::Random { seed: 9 },
//!     universe: UniverseSpec::default(),
//! }) else {
//!     panic!("registration failed");
//! };
//!
//! // Devices report their MISR trails; the batch comes back diagnosed,
//! // in submission order, with repair plans and batch statistics.
//! let reports: Vec<DeviceReport> = Vec::new(); // filled from the field
//! let Response::Batch(batch) = service.handle(Request::DiagnoseBatch { reports }) else {
//!     panic!("batch failed");
//! };
//! assert_eq!(batch.statistics.devices, 0);
//! # let _ = shard;
//! # Ok(())
//! # }
//! ```
//!
//! `examples/fleet_diagnosis.rs` runs a 100-device, two-shard fleet end to
//! end and `benches/fleet.rs` measures batched-lookup throughput and the
//! warm-cache vs cold-build latency gap.
//!
//! ## Dictionaries bigger than RAM
//!
//! At production memory sizes a signature dictionary no longer fits in
//! memory. [`store`] writes it once to a checksummed paged file and
//! serves the **same** [`TrailLookup`](repair::TrailLookup) queries
//! through a bounded page cache — so
//! [`localise_trail`](repair::localise_trail) neither knows nor cares
//! whether the dictionary lives in RAM or on disk:
//!
//! ```
//! use twm::core::{SchemeId, SchemeRegistry};
//! use twm::coverage::{ContentPolicy, CoverageEngine, UniverseBuilder};
//! use twm::march::algorithms::march_c_minus;
//! use twm::mem::MemoryConfig;
//! use twm::repair::{localise_trail, DictionaryOptions, TrailLookup};
//! use twm::store::{PagedDictionary, StoreOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = MemoryConfig::new(8, 4)?;
//! let registry = SchemeRegistry::all(4)?;
//! let engine = CoverageEngine::for_scheme(
//!     registry.get(SchemeId::TwmTa).unwrap(),
//!     &march_c_minus(),
//!     config,
//! )?
//! .content(ContentPolicy::Random { seed: 5 })
//! .build()?;
//! let universe = UniverseBuilder::new(config).stuck_at().transition().build();
//!
//! // Stream the build straight to disk — the full dictionary is never
//! // resident — then diagnose from the file through the page cache.
//! let path = std::env::temp_dir().join("twm-facade-quickstart.twmstore");
//! let paged = PagedDictionary::build_to_disk(
//!     &engine,
//!     &universe,
//!     &DictionaryOptions::default(),
//!     &path,
//!     &StoreOptions::default(),
//! )?;
//! let diagnosis = localise_trail(&paged, paged.reference_trail())?;
//! assert!(diagnosis.clean);
//! assert!(paged.cache_metrics().hit_rate() > 0.0);
//! # std::fs::remove_file(&path)?;
//! # Ok(())
//! # }
//! ```
//!
//! `examples/out_of_core_dictionary.rs` builds a dictionary several times
//! the page-cache budget and proves disk-served lookups bit-identical to
//! the in-RAM build; `perf_trajectory` records build-to-disk throughput
//! and cold-vs-warm lookup latency in `BENCH_<pr>.json`.
//!
//! ## Watching it run
//!
//! Every subsystem above is instrumented through [`obs`]: the coverage
//! engine counts packed vs scalar fault evaluations and window steals,
//! the fleet service records per-request latency histograms and cache
//! hits/misses/evictions/spills, the pager counts page reads and
//! checksum failures, and the TCP front keeps a per-frame access log.
//! Metrics are always on (lock-free atomics); tracing is off until you
//! flip the gate:
//!
//! ```
//! use std::sync::Arc;
//! use twm::fleet::{FleetService, Request, Response};
//! use twm::obs::{trace, RingSink};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Route completed spans/events to a bounded ring and open the gate.
//! let ring = Arc::new(RingSink::new(256));
//! trace::set_sink(ring.clone());
//! trace::set_enabled(true);
//!
//! let service = FleetService::with_defaults()?;
//! let Response::Batch(batch) = service.handle(Request::DiagnoseBatch { reports: Vec::new() })
//! else {
//!     panic!("batch failed");
//! };
//! assert_eq!(batch.statistics.devices, 0);
//!
//! trace::set_enabled(false);
//! // The request produced spans ("fleet.request" wrapping "fleet.batch") ...
//! assert!(ring.take().len() >= 2);
//!
//! // ... and bumped the always-on metrics registry, scrapeable in
//! // process or over TCP via `Request::Metrics`.
//! let Response::Metrics { text, report } = service.handle(Request::Metrics) else {
//!     panic!("metrics failed");
//! };
//! assert_eq!(report.expose(), text);
//! assert!(text.contains("twm_fleet_requests_total"));
//! # Ok(())
//! # }
//! ```
//!
//! The same snapshot ships through any `FleetClient` — scraping a live
//! server returns the identical exposition a sidecar would render from
//! the serde [`MetricsReport`](obs::MetricsReport) — and with
//! [`FleetConfig::metrics_http`](fleet::FleetConfig) set, any HTTP
//! client (Prometheus, `curl`, a raw `TcpStream`) can pull the same
//! bytes from `GET /metrics`; the scrape is byte-identical to the
//! `Request::Metrics` exposition of the same registry state, and
//! `GET /healthz` answers liveness JSON. For *where the time goes*,
//! swap the ring for a [`ProfilerSink`](obs::ProfilerSink) — it
//! aggregates per-span-name call counts and self-time (elapsed minus
//! child spans) — and summarise any latency histogram with
//! [`HistogramSnapshot::quantile`](obs::HistogramSnapshot::quantile) or
//! the p50/p90/p99 carried in
//! [`FleetStatistics::latency_quantiles`](fleet::FleetStatistics::latency_quantiles).
//! `examples/observability.rs` runs an instrumented fleet end to end —
//! live HTTP scrape, profiler, quantiles — and `perf_trajectory`
//! A/B-measures the tracing-enabled overhead on the 64K-word
//! engine-reuse path with the profiler as the sink, embedding the
//! resulting span profile in `BENCH_<pr>.json`; CI gates the overhead
//! below 5% (`--assert-obs-overhead`).

#![warn(missing_docs)]

pub use twm_bist as bist;
pub use twm_core as core;
pub use twm_coverage as coverage;
pub use twm_fleet as fleet;
pub use twm_march as march;
pub use twm_mem as mem;
pub use twm_obs as obs;
pub use twm_repair as repair;
pub use twm_search as search;
pub use twm_store as store;
