//! Integration test for the paper's Section 5 coverage theorem, run across
//! two word widths and two march tests: the transparent word-oriented test
//! preserves the coverage of the non-transparent word-oriented test for the
//! operation-driven fault classes, and inter-word coupling faults are fully
//! covered by both.

use twm::core::atmarch::amarch;
use twm::core::{SchemeId, SchemeRegistry};
use twm::coverage::{ContentPolicy, CouplingScope, CoverageEngine, UniverseBuilder};
use twm::march::algorithms::{march_c_minus, march_u};
use twm::mem::{FaultClass, MemoryConfig};

fn run_case(bmarch: &twm::march::MarchTest, words: usize, width: usize, seed: u64) {
    let config = MemoryConfig::new(words, width).unwrap();
    let transformed = SchemeRegistry::all(width)
        .unwrap()
        .transform(SchemeId::TwmTa, bmarch)
        .unwrap();
    let counterpart = bmarch.concatenated(
        &amarch(width).unwrap(),
        format!("{} + AMarch", bmarch.name()),
    );
    let faults = UniverseBuilder::new(config)
        .all_classes()
        .coupling_scope(CouplingScope::SameWordAndAdjacent)
        .build();
    let transparent = CoverageEngine::builder(config)
        .test(transformed.transparent_test())
        .content(ContentPolicy::Random { seed })
        .build()
        .unwrap();
    let nontransparent = CoverageEngine::builder(config)
        .test(&counterpart)
        .content(ContentPolicy::Zeros)
        .build()
        .unwrap();
    let report = transparent.compare(&nontransparent, &faults).unwrap();

    assert!(
        report.class_counts_equal_for(&[
            FaultClass::Saf,
            FaultClass::Tf,
            FaultClass::Cfid,
            FaultClass::Cfin
        ]),
        "{} W={width}: counts differ\n{}\n{}",
        bmarch.name(),
        report.first,
        report.second
    );
    assert!(
        report.class_coverage_gap(FaultClass::Cfst) < 0.05,
        "{} W={width}: CFst gap {:.3}",
        bmarch.name(),
        report.class_coverage_gap(FaultClass::Cfst)
    );
    assert_eq!(report.first.inter_word.fraction(), 1.0);
    assert_eq!(report.second.inter_word.fraction(), 1.0);
    assert_eq!(report.first.class_coverage(FaultClass::Saf), 1.0);
    assert_eq!(report.first.class_coverage(FaultClass::Tf), 1.0);
    assert_eq!(report.first.class_coverage(FaultClass::Cfin), 1.0);
}

#[test]
fn march_c_minus_width_4() {
    run_case(&march_c_minus(), 5, 4, 0xAA01);
}

#[test]
fn march_c_minus_width_8() {
    run_case(&march_c_minus(), 4, 8, 0xAA02);
}

#[test]
fn march_u_width_4() {
    run_case(&march_u(), 5, 4, 0xAA03);
}
