//! End-to-end fault detection: every modelled fault class, injected into a
//! word-oriented memory holding arbitrary data, is caught by the full
//! transparent BIST session (prediction phase, test phase, signature
//! comparison) built from March C−.

use twm::bist::flow::run_scheme_session;
use twm::bist::Misr;
use twm::core::{SchemeId, SchemeRegistry};
use twm::march::algorithms::march_c_minus;
use twm::mem::{BitAddress, Fault, MemoryBuilder, Transition};

const WIDTH: usize = 8;
const WORDS: usize = 32;

fn detects(fault: Fault, seed: u64) -> bool {
    let transformed = SchemeRegistry::all(WIDTH)
        .expect("width")
        .transform(SchemeId::TwmTa, &march_c_minus())
        .expect("transform");
    let mut memory = MemoryBuilder::new(WORDS, WIDTH)
        .random_content(seed)
        .fault(fault)
        .build()
        .expect("memory");
    let outcome =
        run_scheme_session(&transformed, &mut memory, Misr::standard(WIDTH)).expect("session");
    outcome.fault_detected()
}

#[test]
fn stuck_at_faults_are_detected_by_the_signature_flow() {
    for value in [false, true] {
        for seed in [1u64, 2, 3] {
            assert!(
                detects(Fault::stuck_at(BitAddress::new(11, 3), value), seed),
                "SAF({value}) escaped with seed {seed}"
            );
        }
    }
}

#[test]
fn transition_faults_are_detected_by_the_signature_flow() {
    for direction in [Transition::Rising, Transition::Falling] {
        for seed in [7u64, 8] {
            assert!(
                detects(Fault::transition(BitAddress::new(20, 6), direction), seed),
                "TF({direction}) escaped with seed {seed}"
            );
        }
    }
}

#[test]
fn inter_word_coupling_faults_are_detected_by_the_signature_flow() {
    let aggressor = BitAddress::new(5, 1);
    let victim = BitAddress::new(19, 4);
    let faults = vec![
        Fault::coupling_inversion(aggressor, victim, Transition::Rising),
        Fault::coupling_inversion(aggressor, victim, Transition::Falling),
        Fault::coupling_idempotent(aggressor, victim, Transition::Rising, true),
        Fault::coupling_idempotent(aggressor, victim, Transition::Falling, false),
        Fault::coupling_state(aggressor, victim, true, false),
        Fault::coupling_state(aggressor, victim, false, true),
    ];
    for fault in faults {
        for seed in [11u64, 12] {
            assert!(detects(fault, seed), "{fault} escaped with seed {seed}");
        }
    }
}

#[test]
fn intra_word_inversion_coupling_is_detected() {
    // CFin detection is content-independent (the victim is inverted, so the
    // following read always disagrees), which makes it a stable end-to-end
    // check for the intra-word path through ATMarch.
    let aggressor = BitAddress::new(9, 2);
    let victim = BitAddress::new(9, 5);
    for direction in [Transition::Rising, Transition::Falling] {
        for seed in [21u64, 22, 23] {
            assert!(
                detects(
                    Fault::coupling_inversion(aggressor, victim, direction),
                    seed
                ),
                "intra-word CFin({direction}) escaped with seed {seed}"
            );
        }
    }
}

#[test]
fn multiple_simultaneous_faults_are_still_flagged() {
    let transformed = SchemeRegistry::all(WIDTH)
        .unwrap()
        .transform(SchemeId::TwmTa, &march_c_minus())
        .unwrap();
    let mut memory = MemoryBuilder::new(WORDS, WIDTH)
        .random_content(99)
        .faults(vec![
            Fault::stuck_at(BitAddress::new(0, 0), true),
            Fault::transition(BitAddress::new(15, 7), Transition::Rising),
            Fault::coupling_inversion(
                BitAddress::new(3, 3),
                BitAddress::new(4, 3),
                Transition::Falling,
            ),
        ])
        .build()
        .unwrap();
    let outcome = run_scheme_session(&transformed, &mut memory, Misr::standard(WIDTH)).unwrap();
    assert!(outcome.fault_detected_exact());
    assert!(outcome.fault_detected());
}
