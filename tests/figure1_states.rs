//! Integration test for the analysis behind Figure 1: state and excitation
//! coverage for two arbitrary cells (bit-oriented) and for two bits inside a
//! word (word-oriented).

use twm::core::{SchemeId, SchemeRegistry, SchemeTransform};
use twm::coverage::states::{analyze_cell_pair, analyze_intra_word_pair};
use twm::march::algorithms::{march_b, march_c_minus, march_u, march_x, mats_plus};
use twm::mem::Word;

#[test]
fn coupling_capable_marches_cover_all_pair_conditions() {
    // March C-, March U and March B are published as coupling-fault tests:
    // they must excite every aggressor-transition / victim-value condition
    // for any cell pair (Figure 1(a)).
    for march in [march_c_minus(), march_u(), march_b()] {
        for (lower, higher) in [(0usize, 1usize), (3, 11), (7, 14)] {
            let coverage = analyze_cell_pair(&march, lower, higher, 16).unwrap();
            assert!(
                coverage.all_states_visited(),
                "{} misses pair states for ({lower},{higher})",
                march.name()
            );
            assert!(
                coverage.all_conditions_covered(),
                "{} misses conditions {:?} for ({lower},{higher})",
                march.name(),
                coverage.missing_conditions()
            );
        }
    }
}

#[test]
fn simple_marches_do_not_cover_all_pair_conditions() {
    for march in [mats_plus(), march_x()] {
        let coverage = analyze_cell_pair(&march, 2, 9, 16).unwrap();
        assert!(
            !coverage.all_conditions_covered(),
            "{} unexpectedly covers every condition",
            march.name()
        );
    }
}

#[test]
fn twmarch_covers_intra_word_conditions_for_every_pair_and_content() {
    // Figure 1(b): the transparent word-oriented test covers the four
    // intra-word pair conditions for every bit pair, regardless of the
    // initial content; the solid-background part alone covers only two.
    let width = 16;
    let transformed = SchemeRegistry::all(width)
        .unwrap()
        .transform(SchemeId::TwmTa, &march_u())
        .unwrap();
    for content in [0u128, 0xA5A5, 0x0F0F, 0xFFFF, 0x1234] {
        let initial = Word::from_bits(content, width).unwrap();
        for a in 0..width {
            for b in (a + 1)..width {
                let full =
                    analyze_intra_word_pair(transformed.transparent_test(), a, b, initial).unwrap();
                assert!(
                    full.all_covered(),
                    "pair ({a},{b}) content {initial}: {full:?}"
                );
                let partial = analyze_intra_word_pair(
                    transformed.stage(SchemeTransform::STAGE_TSMARCH).unwrap(),
                    a,
                    b,
                    initial,
                )
                .unwrap();
                assert_eq!(
                    partial.covered_count(),
                    2,
                    "TSMarch alone for pair ({a},{b})"
                );
            }
        }
    }
}
