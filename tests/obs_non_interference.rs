//! The observability invariant, property-tested end to end:
//! instrumentation only observes. Coverage reports, fleet batch
//! diagnoses and paged-dictionary lookups are **bit-identical** with
//! tracing enabled (spans/events flowing into a ring sink or the
//! sampling profiler) and disabled (the default one-atomic-load gate),
//! and a live HTTP `/metrics` scrape in the middle of a run perturbs
//! nothing.
//!
//! The trace gate is process-global, so every test in this binary
//! serialises on one mutex and restores the disabled state before
//! releasing it.

use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use proptest::prelude::*;

use twm::core::{SchemeId, SchemeRegistry};
use twm::coverage::{ContentPolicy, CoverageEngine, UniverseBuilder};
use twm::fleet::{
    DeviceReport, FleetConfig, FleetService, Request, Response, ShardKey, SignatureTrail,
};
use twm::march::algorithms::march_c_minus;
use twm::mem::{BitAddress, Fault, FaultSet, FaultyMemory, MemoryConfig};
use twm::obs::{trace, ProfileReport, ProfilerSink, RingSink};
use twm::repair::{localise_trail, DictionaryOptions, SignatureDictionary, TrailLookup};
use twm::store::{PagedDictionary, StoreOptions};

/// Serialises gate flips across the tests in this binary.
fn gate() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Runs `work` twice — observability off, then on (tracing into a fresh
/// ring sink) — and returns both results plus the number of records the
/// enabled run produced. The gate is left disabled.
fn off_then_on<T>(work: impl Fn() -> T) -> (T, T, usize) {
    trace::set_enabled(false);
    let off = work();
    let ring = Arc::new(RingSink::new(1 << 16));
    trace::set_sink(ring.clone());
    trace::set_enabled(true);
    let on = work();
    trace::set_enabled(false);
    (off, on, ring.take().len())
}

/// Like [`off_then_on`], but the enabled run traces into a
/// [`ProfilerSink`]; returns both results plus the profile.
fn off_then_profiled<T>(work: impl Fn() -> T) -> (T, T, ProfileReport) {
    trace::set_enabled(false);
    let off = work();
    let profiler = Arc::new(ProfilerSink::new());
    trace::set_sink(profiler.clone());
    trace::set_enabled(true);
    let on = work();
    trace::set_enabled(false);
    (off, on, profiler.snapshot())
}

fn engine(words: usize, scheme: SchemeId, seed: u64) -> CoverageEngine {
    let config = MemoryConfig::new(words, 4).unwrap();
    let registry = SchemeRegistry::all(4).unwrap();
    CoverageEngine::for_scheme(registry.get(scheme).unwrap(), &march_c_minus(), config)
        .unwrap()
        .content(ContentPolicy::Random { seed })
        .build()
        .unwrap()
}

fn device_trail(config: MemoryConfig, seed: u64, faults: &[Fault]) -> SignatureTrail {
    let registry = SchemeRegistry::all(config.width()).unwrap();
    let transform = registry
        .get(SchemeId::TwmTa)
        .unwrap()
        .transform(&march_c_minus())
        .unwrap();
    let mut memory =
        FaultyMemory::with_faults(config, FaultSet::from_faults(faults.iter().copied())).unwrap();
    memory.fill_random(seed);
    let misr = twm::bist::Misr::standard(config.width());
    let staged = twm::bist::run_scheme_session_staged(&transform, &mut memory, misr).unwrap();
    SignatureTrail::new(staged.signature_trail())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// `CoverageEngine::report` is bit-identical with tracing on or off,
    /// over random memory shapes, schemes and content seeds.
    #[test]
    fn coverage_reports_are_identical_with_obs_on_and_off(
        words in 6usize..10,
        scheme_pick in 0usize..2,
        seed in any::<u64>(),
    ) {
        let _gate = gate();
        let scheme = [SchemeId::TwmTa, SchemeId::Scheme1][scheme_pick];
        let engine = engine(words, scheme, seed);
        let universe = UniverseBuilder::new(engine.config())
            .stuck_at()
            .transition()
            .build();
        let (off, on, records) = off_then_on(|| engine.report(&universe).unwrap());
        prop_assert_eq!(off, on);
        prop_assert!(records > 0, "the enabled run traced at least one span");
    }

    /// A fleet `DiagnoseBatch` — dictionary registration, cache fill,
    /// diagnosis, statistics — answers bit-identically with tracing on
    /// or off, each run on a fresh service.
    #[test]
    fn diagnose_batch_is_identical_with_obs_on_and_off(
        seed in any::<u64>(),
        column in 0usize..4,
    ) {
        let _gate = gate();
        let config = MemoryConfig::new(6, 4).unwrap();
        let engine = engine(6, SchemeId::TwmTa, seed);
        let universe = UniverseBuilder::new(config).stuck_at().transition().build();
        let dictionary =
            SignatureDictionary::build(&engine, &universe, &DictionaryOptions::default()).unwrap();
        let shard = ShardKey::new(config, SchemeId::TwmTa, &march_c_minus());
        let fault = Fault::stuck_at(BitAddress::new(2, column), true);
        let reports = vec![
            DeviceReport {
                device: "clean".into(),
                shard,
                trail: device_trail(config, seed, &[]),
                spares: 1,
            },
            DeviceReport {
                device: "stuck".into(),
                shard,
                trail: device_trail(config, seed, &[fault]),
                spares: 1,
            },
        ];

        let (off, on, records) = off_then_on(|| {
            let service = FleetService::new(FleetConfig::default()).unwrap();
            let registered = service.handle(Request::RegisterDictionary {
                source: march_c_minus(),
                dictionary: dictionary.clone(),
            });
            assert!(matches!(registered, Response::Registered { .. }));
            service.handle(Request::DiagnoseBatch { reports: reports.clone() })
        });
        prop_assert!(matches!(&off, Response::Batch(_)));
        prop_assert_eq!(off, on);
        prop_assert!(records > 0, "the enabled run traced at least one span");
    }

    /// Running a coverage report under the sampling profiler changes
    /// nothing: the result stays bit-identical, while the profile sees
    /// real spans with self-time bounded by total time.
    #[test]
    fn profiled_coverage_reports_are_identical(
        words in 6usize..10,
        seed in any::<u64>(),
    ) {
        let _gate = gate();
        let engine = engine(words, SchemeId::TwmTa, seed);
        let universe = UniverseBuilder::new(engine.config())
            .stuck_at()
            .transition()
            .build();
        let (off, on, profile) = off_then_profiled(|| engine.report(&universe).unwrap());
        prop_assert_eq!(off, on);
        prop_assert!(!profile.spans.is_empty(), "the profiler saw no spans");
        prop_assert_eq!(profile.open_parents, 0, "spans leaked pending child time");
        for span in &profile.spans {
            prop_assert!(span.calls > 0);
            prop_assert!(span.self_ns <= span.total_ns, "{}", span.name);
            prop_assert!(span.min_ns <= span.max_ns, "{}", span.name);
        }
    }

    /// A live HTTP `/metrics` scrape against the service's own endpoint,
    /// fired between batches, perturbs nothing: outcomes match a
    /// scrape-free service bit for bit.
    #[test]
    fn live_http_scrapes_do_not_perturb_diagnosis(
        seed in any::<u64>(),
        column in 0usize..4,
    ) {
        let config = MemoryConfig::new(6, 4).unwrap();
        let engine = engine(6, SchemeId::TwmTa, seed);
        let universe = UniverseBuilder::new(config).stuck_at().transition().build();
        let dictionary =
            SignatureDictionary::build(&engine, &universe, &DictionaryOptions::default()).unwrap();
        let shard = ShardKey::new(config, SchemeId::TwmTa, &march_c_minus());
        let fault = Fault::stuck_at(BitAddress::new(2, column), true);
        let reports = vec![DeviceReport {
            device: "stuck".into(),
            shard,
            trail: device_trail(config, seed, &[fault]),
            spares: 1,
        }];

        let run = |metrics_http: Option<std::net::SocketAddr>| {
            let service = FleetService::new(FleetConfig {
                metrics_http,
                ..FleetConfig::default()
            })
            .unwrap();
            let registered = service.handle(Request::RegisterDictionary {
                source: march_c_minus(),
                dictionary: dictionary.clone(),
            });
            assert!(matches!(registered, Response::Registered { .. }));
            let first = service.handle(Request::DiagnoseBatch { reports: reports.clone() });
            if let Some(addr) = service.metrics_addr() {
                // A real scrape over the wire, mid-run.
                use std::io::{Read, Write};
                let mut stream = std::net::TcpStream::connect(addr).unwrap();
                stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
                stream.shutdown(std::net::Shutdown::Write).unwrap();
                let mut scraped = Vec::new();
                stream.read_to_end(&mut scraped).unwrap();
                assert!(scraped.starts_with(b"HTTP/1.1 200 OK\r\n"));
            }
            let second = service.handle(Request::DiagnoseBatch { reports: reports.clone() });
            (first, second)
        };

        let silent = run(None);
        let scraped = run(Some("127.0.0.1:0".parse().unwrap()));
        prop_assert_eq!(silent, scraped);
    }

    /// Paged-dictionary lookups served through the instrumented pager
    /// diagnose bit-identically with tracing on or off.
    #[test]
    fn paged_lookups_are_identical_with_obs_on_and_off(
        seed in any::<u64>(),
        column in 0usize..4,
    ) {
        let _gate = gate();
        let config = MemoryConfig::new(6, 4).unwrap();
        let engine = engine(6, SchemeId::TwmTa, seed);
        let universe = UniverseBuilder::new(config).stuck_at().transition().build();
        let path = std::env::temp_dir().join(format!(
            "twm-obs-noninterference-{}-{seed:x}.twmstore",
            std::process::id()
        ));
        let paged = PagedDictionary::build_to_disk(
            &engine,
            &universe,
            &DictionaryOptions::default(),
            &path,
            &StoreOptions { page_size: 256, cache_budget: 1024 },
        )
        .unwrap();
        let fault = Fault::stuck_at(BitAddress::new(3, column), true);
        let faulty = device_trail(config, seed, &[fault]);

        let (off, on, _records) = off_then_on(|| {
            let clean = localise_trail(&paged, paged.reference_trail()).unwrap();
            let diagnosed = localise_trail(&paged, &faulty).unwrap();
            (clean, diagnosed)
        });
        prop_assert!(off.0.clean);
        prop_assert!(!off.1.clean);
        prop_assert_eq!(off, on);
        std::fs::remove_file(&path).unwrap();
    }
}
