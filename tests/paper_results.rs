//! Integration tests pinning the paper's headline numbers: Table 2 closed
//! forms, Table 3 cells, the 56 % / 19 % comparison and the Section 4 worked
//! example — all pulled from the scheme registry.

use twm::core::complexity::{headline, proposed_exact, proposed_formula, table3_rows};
use twm::core::{SchemeId, SchemeRegistry, SchemeTransform};
use twm::march::algorithms::{march_c_minus, march_u};

#[test]
fn table2_closed_forms() {
    // March C-: M = 10, Q = 5. For W = 32 (L = 5):
    let length = march_c_minus().length();
    let registry = SchemeRegistry::comparison(32).unwrap();
    let form = |id: SchemeId| registry.get(id).unwrap().closed_form(length);
    assert_eq!(form(SchemeId::Scheme1).tcm, 60);
    assert_eq!(form(SchemeId::Scheme1).tcp, 30);
    assert_eq!(form(SchemeId::Tomt).tcm, 258);
    assert_eq!(form(SchemeId::Tomt).tcp, 0);
    assert_eq!(form(SchemeId::TwmTa).tcm, 35);
    assert_eq!(form(SchemeId::TwmTa).tcp, 15);
}

#[test]
fn table3_march_c_minus_and_march_u_across_word_sizes() {
    let tests = vec![march_c_minus(), march_u()];
    let widths = [16usize, 32, 64, 128];
    let rows = table3_rows(&tests, &widths).expect("table rows");
    assert_eq!(rows.len(), 8);

    // Expected totals (TCM + TCP per word) from the reconstructed closed
    // forms: March C- has M = 10, Q = 5; March U has M = 13, Q = 6.
    let expected_proposed: &[(&str, usize, usize)] = &[
        ("March C-", 16, 43),
        ("March C-", 32, 50),
        ("March C-", 64, 57),
        ("March C-", 128, 64),
        ("March U", 16, 47),
        ("March U", 32, 54),
        ("March U", 64, 61),
        ("March U", 128, 68),
    ];
    for (name, width, total) in expected_proposed {
        let row = rows
            .iter()
            .find(|r| r.test_name == *name && r.width == *width)
            .expect("row exists");
        let proposed = row.cell(SchemeId::TwmTa).unwrap();
        assert_eq!(proposed.closed_form.total(), *total, "{name} W={width}");
        // The proposed scheme wins against both baselines in every cell.
        assert!(
            proposed.closed_form.total() < row.cell(SchemeId::Scheme1).unwrap().closed_form.total()
        );
        assert!(
            proposed.closed_form.total() < row.cell(SchemeId::Tomt).unwrap().closed_form.total()
        );
        // Exact generated-test length differs from the closed form by at
        // most the one appended read (write-terminated tests).
        assert!(proposed.exact.tcm - proposed.closed_form.tcm <= 1);
    }

    // Spot-check the baselines for March C- at W = 16 and W = 128.
    let row = rows
        .iter()
        .find(|r| r.test_name == "March C-" && r.width == 16)
        .unwrap();
    assert_eq!(row.cell(SchemeId::Scheme1).unwrap().closed_form.total(), 75);
    assert_eq!(row.cell(SchemeId::Tomt).unwrap().closed_form.total(), 130);
    let row = rows
        .iter()
        .find(|r| r.test_name == "March C-" && r.width == 128)
        .unwrap();
    assert_eq!(
        row.cell(SchemeId::Scheme1).unwrap().closed_form.total(),
        120
    );
    assert_eq!(row.cell(SchemeId::Tomt).unwrap().closed_form.total(), 1026);
}

#[test]
fn headline_ratios_56_and_19_percent() {
    let registry = SchemeRegistry::comparison(32).unwrap();
    let comparison = headline(&registry, &march_c_minus()).unwrap();
    assert_eq!(comparison.proposed_total, 50);
    assert_eq!(comparison.scheme1_total, 90);
    assert_eq!(comparison.scheme2_total, 258);
    assert!((comparison.ratio_vs_scheme1 * 100.0 - 55.6).abs() < 0.5);
    assert!((comparison.ratio_vs_scheme2 * 100.0 - 19.4).abs() < 0.5);
}

#[test]
fn section4_worked_example_march_u_8_bits() {
    let transformed = SchemeRegistry::all(8)
        .expect("width 8")
        .transform(SchemeId::TwmTa, &march_u())
        .expect("transform March U");
    assert_eq!(
        transformed
            .stage(SchemeTransform::STAGE_TSMARCH)
            .unwrap()
            .operations_per_word(),
        13
    );
    assert_eq!(
        transformed
            .stage(SchemeTransform::STAGE_ATMARCH)
            .unwrap()
            .operations_per_word(),
        16
    );
    assert_eq!(transformed.transparent_test().operations_per_word(), 29);

    let exact = proposed_exact(&march_u(), 8).expect("exact complexity");
    assert_eq!(exact.tcm, 29);
}

#[test]
fn proposed_complexity_is_only_weakly_coupled_to_the_bit_oriented_test() {
    // The paper's closing observation: the proposed scheme's complexity is
    // only slightly related to the bit-oriented test, unlike Scheme 1.
    let c_minus = march_c_minus().length();
    let u = march_u().length();
    for width in [16usize, 32, 64, 128] {
        let registry = SchemeRegistry::comparison(width).unwrap();
        let proposed = registry.get(SchemeId::TwmTa).unwrap();
        let scheme1 = registry.get(SchemeId::Scheme1).unwrap();
        let gap_proposed = proposed.closed_form(u).total() as isize
            - proposed.closed_form(c_minus).total() as isize;
        let gap_scheme1 =
            scheme1.closed_form(u).total() as isize - scheme1.closed_form(c_minus).total() as isize;
        // The gap between the two tests stays constant (M and Q difference)
        // for the proposed scheme but grows with log2(W)+1 for Scheme 1.
        assert_eq!(gap_proposed, 4);
        assert!(gap_scheme1 > gap_proposed);
        // The registry's closed form is the same arithmetic as the free
        // formula primitive.
        assert_eq!(proposed.closed_form(u), proposed_formula(u, width));
    }
}
