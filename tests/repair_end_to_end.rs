//! Acceptance property of the repair subsystem, at the ISSUE's canonical
//! 8×32 shape: for **every** detectable single stuck-at / transition fault,
//! diagnose → allocate → remap → re-run yields a clean signature, and the
//! signature dictionary build is bit-identical for any worker thread count.

use twm::core::{SchemeId, SchemeRegistry};
use twm::coverage::{ContentPolicy, CoverageEngine, Strategy, UniverseBuilder};
use twm::march::algorithms::march_c_minus;
use twm::mem::{Fault, FaultSet, FaultyMemory, MemoryConfig, RepairableMemory};
use twm::repair::{
    diagnose_and_repair, DiagnosticSession, DictionaryOptions, RepairAllocator, SignatureDictionary,
};

const WORDS: usize = 8;
const WIDTH: usize = 32;
const SEED: u64 = 4242;

fn engine(config: MemoryConfig, strategy: Strategy) -> CoverageEngine {
    let registry = SchemeRegistry::all(WIDTH).unwrap();
    CoverageEngine::for_scheme(
        registry.get(SchemeId::TwmTa).unwrap(),
        &march_c_minus(),
        config,
    )
    .unwrap()
    .content(ContentPolicy::Random { seed: SEED })
    .strategy(strategy)
    .build()
    .unwrap()
}

#[test]
fn every_detectable_saf_tf_fault_at_8x32_repairs_to_a_clean_signature() {
    let config = MemoryConfig::new(WORDS, WIDTH).unwrap();
    let universe = UniverseBuilder::new(config).stuck_at().transition().build();
    assert_eq!(universe.len(), 2 * WORDS * WIDTH * 2);
    let engine = engine(config, Strategy::Auto);

    // The proposed scheme detects the whole SAF+TF universe (the paper's
    // coverage claim); the repair property quantifies over exactly the
    // detectable set.
    let detectable: Vec<Fault> = engine
        .verdicts(&universe)
        .map(|verdict| verdict.unwrap())
        .filter(|verdict| verdict.detected)
        .map(|verdict| verdict.fault)
        .collect();
    assert_eq!(detectable.len(), universe.len());

    let dictionary =
        SignatureDictionary::build(&engine, &universe, &DictionaryOptions::default()).unwrap();
    let stats = dictionary.stats();
    assert!(stats.indexed > 0);
    assert_eq!(stats.indexed + stats.undetected, universe.len());

    // One-scheme registry keeps the per-fault follow-up cheap; the
    // cross-scheme variant is covered in `crates/repair/tests`.
    let mut registry = SchemeRegistry::empty(WIDTH).unwrap();
    registry
        .register(Box::new(twm::core::TwmTa::new(WIDTH).unwrap()))
        .unwrap();
    let session = DiagnosticSession::new(&registry, &march_c_minus())
        .unwrap()
        .with_dictionary(&dictionary)
        .unwrap();
    let allocator = RepairAllocator::default();

    for &fault in &detectable {
        let mut memory = FaultyMemory::with_faults(config, FaultSet::from_faults([fault])).unwrap();
        memory.fill_random(SEED); // the dictionary's reference content
        let flow = diagnose_and_repair(
            &session,
            &allocator,
            RepairableMemory::new(memory, 2).unwrap(),
        )
        .expect("flow runs");

        let victim = fault.victim();
        assert!(
            flow.localisation.defective_words().contains(&victim.word),
            "missed the word of {fault}"
        );
        assert!(flow.plan.fully_repairs(), "spares exhausted for {fault}");
        assert!(
            flow.verification.clean(),
            "signature still failing after repairing {fault}"
        );
        // The top-ranked defect names the exact cell.
        assert_eq!(flow.localisation.defects[0].cell, victim, "for {fault}");
    }
}

#[test]
fn dictionary_build_at_8x32_is_bit_identical_for_any_thread_count() {
    let config = MemoryConfig::new(WORDS, WIDTH).unwrap();
    let universe = UniverseBuilder::new(config).stuck_at().transition().build();
    let options = |strategy| DictionaryOptions {
        strategy,
        multi_fault_samples: 16,
        ..DictionaryOptions::default()
    };
    let reference = SignatureDictionary::build(
        &engine(config, Strategy::Serial),
        &universe,
        &options(Strategy::Serial),
    )
    .unwrap();
    for threads in [2usize, 3] {
        let parallel = SignatureDictionary::build(
            &engine(config, Strategy::Parallel { threads }),
            &universe,
            &options(Strategy::Parallel { threads }),
        )
        .unwrap();
        assert_eq!(parallel, reference, "drift at {threads} threads");
    }
}
