//! Scheme-registry conformance, dynamic half: every registered scheme's
//! transform passes the structural checks (`verify::check_transparent`,
//! `final_content_offset` round-trip), restores arbitrary content on the
//! simulator, and `scheme_matrix` reproduces the paper's Table 2/3 numbers
//! and the 0.56 / 0.19 headline bit-for-bit.

use twm::bist::flow::run_scheme_session;
use twm::bist::Misr;
use twm::core::complexity::headline;
use twm::core::verify::{check_transparent, final_content_offset};
use twm::core::{SchemeId, SchemeRegistry};
use twm::coverage::{scheme_matrix, ContentPolicy, MatrixOptions, UniverseBuilder};
use twm::march::algorithms;
use twm::march::DataPattern;
use twm::mem::{MemoryBuilder, MemoryConfig};

#[test]
fn every_registry_scheme_passes_the_structural_round_trip() {
    for width in [2usize, 8, 32] {
        let registry = SchemeRegistry::all(width).unwrap();
        for march in algorithms::all() {
            for scheme in registry.iter() {
                let transform = scheme.transform(&march).unwrap();
                check_transparent(transform.transparent_test()).unwrap_or_else(|e| {
                    panic!("{} {} W={width}: {e}", scheme.name(), march.name())
                });
                assert_eq!(
                    final_content_offset(transform.transparent_test()).unwrap(),
                    DataPattern::Zeros,
                    "{} {} W={width}",
                    scheme.name(),
                    march.name()
                );
            }
        }
    }
}

#[test]
fn every_registry_scheme_restores_content_on_the_simulator() {
    let width = 8;
    let registry = SchemeRegistry::all(width).unwrap();
    for march in algorithms::all() {
        for scheme in registry.iter() {
            let transform = scheme.transform(&march).unwrap();
            let mut memory = MemoryBuilder::new(24, width)
                .random_content(0xC0FFEE)
                .build()
                .unwrap();
            let before = memory.content();
            let outcome =
                run_scheme_session(&transform, &mut memory, Misr::standard(width)).unwrap();
            assert!(
                !outcome.fault_detected() && outcome.content_preserved,
                "{} {}",
                scheme.name(),
                march.name()
            );
            assert_eq!(memory.content(), before);
        }
    }
}

#[test]
fn scheme_matrix_reproduces_table2_and_table3_bit_for_bit() {
    // Table 2 (March C-, W = 32): scheme1 = 60+30, scheme2 = 258+0,
    // proposed = 35+15 — straight out of one scheme_matrix call.
    let config = MemoryConfig::new(8, 32).unwrap();
    let registry = SchemeRegistry::comparison(32).unwrap();
    let faults = UniverseBuilder::new(config)
        .stuck_at()
        .transition()
        .sample_per_class(16, 3)
        .build();
    let matrix = scheme_matrix(
        &registry,
        &algorithms::march_c_minus(),
        config,
        &faults,
        MatrixOptions {
            content: ContentPolicy::Random { seed: 9 },
            ..MatrixOptions::default()
        },
    )
    .unwrap();

    let closed = |id: SchemeId| {
        let row = matrix.row(id).unwrap();
        (row.closed_form().tcm, row.closed_form().tcp)
    };
    assert_eq!(closed(SchemeId::Scheme1), (60, 30));
    assert_eq!(closed(SchemeId::Tomt), (258, 0));
    assert_eq!(closed(SchemeId::TwmTa), (35, 15));

    // March C- is read-terminated, so the exact generated test length
    // equals the closed form — Table 3's "exact" column. The generated
    // prediction is the *full* read projection (21 reads for W = 32),
    // which exceeds the paper's reconstructed TCP model (Q + 2L = 15); the
    // divergence is reported, not hidden.
    let proposed = matrix.row(SchemeId::TwmTa).unwrap();
    assert_eq!(proposed.exact().tcm, 35);
    assert_eq!(
        proposed.exact().tcp,
        proposed
            .transform
            .signature_prediction()
            .unwrap()
            .operations_per_word()
    );
    assert_eq!(proposed.exact().tcp, 21);
    // And the matrix's dynamic checks hold for every row.
    for row in &matrix.rows {
        assert!(row.content_preserved, "{}", row.name);
        assert_eq!(row.session_operations, row.transform.total_operations(8));
        assert_eq!(row.coverage.total_coverage(), 1.0, "{}", row.name);
    }

    // Table 3 spot checks through the same registry entries (March U,
    // W = 64: TCM = 43, TCP = 18).
    let march_u = algorithms::march_u();
    let registry64 = SchemeRegistry::comparison(64).unwrap();
    let proposed64 = registry64
        .get(SchemeId::TwmTa)
        .unwrap()
        .closed_form(march_u.length());
    assert_eq!((proposed64.tcm, proposed64.tcp), (43, 18));
}

#[test]
fn headline_values_are_bit_for_bit() {
    let registry = SchemeRegistry::comparison(32).unwrap();
    let comparison = headline(&registry, &algorithms::march_c_minus()).unwrap();
    assert_eq!(comparison.proposed_total, 50);
    assert_eq!(comparison.scheme1_total, 90);
    assert_eq!(comparison.scheme2_total, 258);
    // The paper's "about 56 % or 19 %".
    assert_eq!(comparison.ratio_vs_scheme1, 50.0 / 90.0);
    assert_eq!(comparison.ratio_vs_scheme2, 50.0 / 258.0);
}
