//! End-to-end search acceptance through the facade: greedy minimisation
//! reproducibly shrinks March C− at W = 32 while keeping 100 % stuck-at +
//! transition coverage, and the minimised test stays transformable (and
//! cheaper) through the paper's TWM_TA — the experiment
//! `examples/test_minimisation.rs` prints.

use twm::core::{SchemeId, SchemeRegistry};
use twm::coverage::UniverseBuilder;
use twm::march::algorithms::march_c_minus;
use twm::mem::MemoryConfig;
use twm::search::{minimise_greedy, CoverageFloor, GreedyOptions, Objective, ObjectiveOptions};

fn objective_w32() -> Objective {
    let config = MemoryConfig::new(8, 32).unwrap();
    let universe = UniverseBuilder::new(config).stuck_at().transition().build();
    Objective::new(
        config,
        universe,
        Some(SchemeRegistry::comparison(32).unwrap()),
        ObjectiveOptions::default(),
    )
    .unwrap()
}

#[test]
fn march_c_minus_minimises_at_w32_with_full_saf_tf_coverage() {
    let objective = objective_w32();
    let seed = march_c_minus();
    let seed_score = objective.score(&seed).unwrap().unwrap();
    assert!(seed_score.full_coverage(), "March C- covers all SAF+TF");
    assert_eq!(seed_score.total_faults, 2 * 8 * 32 * 2);

    let options = GreedyOptions {
        floor: CoverageFloor::Full,
        ..GreedyOptions::default()
    };
    let outcome = minimise_greedy(&objective, &seed, &options).unwrap();

    // Strictly fewer operations at unchanged (full) coverage.
    assert!(outcome.best.score.full_coverage());
    assert!(outcome.best.score.test_ops < seed_score.test_ops);
    assert!(outcome.best.score.cost() < seed_score.cost());

    // The winner is still transformable by the paper's scheme, and its
    // transparent session got cheaper too.
    let registry = objective.registry().unwrap();
    let twm_ta = registry.get(SchemeId::TwmTa).unwrap();
    let before = twm_ta.transform(&seed).unwrap().exact_complexity().total();
    let after = twm_ta
        .transform(&outcome.best.test)
        .unwrap()
        .exact_complexity()
        .total();
    assert!(
        after < before,
        "TWM_TA cost must shrink: {before} -> {after}"
    );

    // Reproducible: greedy is deterministic, so a second run agrees bit
    // for bit (front, provenance log, winner).
    let again = minimise_greedy(&objective, &seed, &options).unwrap();
    assert_eq!(outcome, again);
}

#[test]
fn provenance_log_replays_onto_the_winner() {
    // The log is a real provenance record: replaying the accepted
    // mutations over the seed reproduces the winning test.
    let objective = objective_w32();
    let options = GreedyOptions::default();
    let outcome = minimise_greedy(&objective, &march_c_minus(), &options).unwrap();
    let model = options.model;
    let mut test = model
        .repair(march_c_minus().name(), march_c_minus().elements().to_vec())
        .unwrap();
    for entry in outcome.log.iter().skip(1) {
        let mutation = entry.mutation.expect("accepted entries carry mutations");
        assert_eq!(entry.parent.as_deref(), Some(test.to_string().as_str()));
        test = model.apply(&test, mutation).expect("log replays cleanly");
        assert_eq!(test.to_string(), entry.notation);
    }
    assert_eq!(test, outcome.best.test);
}
