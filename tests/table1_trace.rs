//! Integration test for the paper's Table 1: the word content while the
//! first three ATMarch elements execute, expressed as an XOR offset from the
//! initial content.

use twm::core::{SchemeId, SchemeRegistry, SchemeTransform};
use twm::march::algorithms::march_u;
use twm::march::{DataSpec, OpKind};
use twm::mem::{MemoryBuilder, Word};

/// Structural check: the sequence of write offsets in the k-th ATMarch
/// element is `D_k, 0` (write the background over the content, then restore)
/// and every element is bracketed by reads of the restored content.
#[test]
fn atmarch_offset_sequence_matches_table1() {
    let transformed = SchemeRegistry::all(8)
        .unwrap()
        .transform(SchemeId::TwmTa, &march_u())
        .unwrap();
    let atmarch = transformed.stage(SchemeTransform::STAGE_ATMARCH).unwrap();
    let expected_backgrounds = [0b0101_0101u128, 0b0011_0011, 0b0000_1111];

    for (k, element) in atmarch.elements().iter().take(3).enumerate() {
        assert_eq!(element.len(), 5, "ATMarch elements have five operations");
        let offsets: Vec<u128> = element
            .ops
            .iter()
            .map(|op| match op.data {
                DataSpec::TransparentXor(p) => p.resolve(8).unwrap().to_bits(),
                DataSpec::Literal(_) => panic!("ATMarch must be transparent"),
            })
            .collect();
        // r_c, w_{c^Dk}, r_{c^Dk}, w_c, r_c
        assert_eq!(offsets[0], 0);
        assert_eq!(offsets[1], expected_backgrounds[k]);
        assert_eq!(offsets[2], expected_backgrounds[k]);
        assert_eq!(offsets[3], 0);
        assert_eq!(offsets[4], 0);
        assert_eq!(element.ops[0].kind, OpKind::Read);
        assert_eq!(element.ops[1].kind, OpKind::Write);
        assert_eq!(element.ops[2].kind, OpKind::Read);
        assert_eq!(element.ops[3].kind, OpKind::Write);
        assert_eq!(element.ops[4].kind, OpKind::Read);
    }
}

/// Dynamic check: executing ATMarch on a single-word memory with an
/// arbitrary content walks the content through `c, c^Dk, c` for every k and
/// ends with the content restored — exactly the column of Table 1.
#[test]
fn atmarch_execution_walks_the_table1_contents() {
    let width = 8;
    let initial = Word::from_bits(0b1011_0110, width).unwrap();
    let transformed = SchemeRegistry::all(width)
        .unwrap()
        .transform(SchemeId::TwmTa, &march_u())
        .unwrap();
    let mut memory = MemoryBuilder::new(1, width)
        .content(vec![initial])
        .build()
        .unwrap();
    memory.set_tracing(true);

    let result = twm::bist::execute(
        transformed.stage(SchemeTransform::STAGE_ATMARCH).unwrap(),
        &mut memory,
    )
    .unwrap();
    assert!(!result.detected());
    assert!(result.content_preserved());

    let trace = memory.take_trace();
    let backgrounds = [0b0101_0101u128, 0b0011_0011, 0b0000_1111];
    // Per element: write c^Dk then write c; collect the write data in order.
    let writes: Vec<u128> = trace.writes().iter().map(|w| w.data.to_bits()).collect();
    assert_eq!(writes.len(), 6);
    for (k, chunk) in writes.chunks(2).enumerate() {
        assert_eq!(chunk[0], initial.to_bits() ^ backgrounds[k]);
        assert_eq!(chunk[1], initial.to_bits());
    }
}
