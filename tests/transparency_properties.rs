//! Property-based integration tests: the transparency guarantee of the
//! generated tests must hold for **every registered scheme**, any library
//! algorithm, any supported word width and any initial memory content —
//! the dynamic half of the scheme conformance suite.

use proptest::prelude::*;

use twm::bist::{execute, flow::run_scheme_session, Misr};
use twm::core::verify::check_transparent;
use twm::core::{SchemeId, SchemeRegistry};
use twm::march::algorithms;
use twm::mem::MemoryBuilder;

fn arb_algorithm() -> impl Strategy<Value = twm::march::MarchTest> {
    let all = algorithms::all();
    let count = all.len();
    (0..count).prop_map(move |i| algorithms::all().swap_remove(i))
}

fn arb_width() -> impl Strategy<Value = usize> {
    prop_oneof![Just(2usize), Just(4), Just(8), Just(16), Just(32), Just(64)]
}

fn arb_scheme_id() -> impl Strategy<Value = SchemeId> {
    let ids = SchemeId::all();
    (0..ids.len()).prop_map(move |i| ids[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every registered scheme's transparent test preserves arbitrary memory
    /// content and reports no mismatch on a fault-free memory, for every
    /// algorithm, width and content.
    #[test]
    fn every_scheme_is_transparent_for_any_content(
        scheme_id in arb_scheme_id(),
        march in arb_algorithm(),
        width in arb_width(),
        words in 1usize..24,
        seed in any::<u64>(),
    ) {
        let registry = SchemeRegistry::all(width).unwrap();
        let transformed = registry.transform(scheme_id, &march).unwrap();
        prop_assert!(check_transparent(transformed.transparent_test()).is_ok());

        let mut memory = MemoryBuilder::new(words, width).random_content(seed).build().unwrap();
        let before = memory.content();
        let result = execute(transformed.transparent_test(), &mut memory).unwrap();
        prop_assert!(!result.detected());
        prop_assert!(result.content_preserved());
        prop_assert_eq!(memory.content(), before);
    }

    /// The scheme-generic BIST session produces matching signatures on a
    /// fault-free memory for every scheme, algorithm, width and content —
    /// including the prediction-free TOMT path.
    #[test]
    fn scheme_session_signatures_match_on_fault_free_memory(
        scheme_id in arb_scheme_id(),
        march in arb_algorithm(),
        width in prop_oneof![Just(4usize), Just(8), Just(16)],
        words in 1usize..16,
        seed in any::<u64>(),
    ) {
        let registry = SchemeRegistry::all(width).unwrap();
        let transformed = registry.transform(scheme_id, &march).unwrap();
        let mut memory = MemoryBuilder::new(words, width).random_content(seed).build().unwrap();
        let outcome = run_scheme_session(&transformed, &mut memory, Misr::standard(width)).unwrap();
        prop_assert!(!outcome.fault_detected());
        prop_assert!(!outcome.fault_detected_exact());
        prop_assert!(outcome.content_preserved);
        if transformed.signature_prediction().is_none() {
            prop_assert_eq!(outcome.prediction_operations, 0);
        }
    }

    /// The proposed scheme is never longer than Scheme 1 and the advantage
    /// grows with the word width.
    #[test]
    fn proposed_is_always_shorter_than_scheme1(
        march in arb_algorithm(),
        width in arb_width(),
    ) {
        let registry = SchemeRegistry::all(width).unwrap();
        let proposed = registry.transform(SchemeId::TwmTa, &march).unwrap();
        let scheme1 = registry.transform(SchemeId::Scheme1, &march).unwrap();
        prop_assert!(
            proposed.transparent_test().operations_per_word()
                < scheme1.transparent_test().operations_per_word()
        );
    }
}
