//! Property-based integration tests: the transparency guarantee of the
//! generated tests must hold for any library algorithm, any supported word
//! width and any initial memory content.

use proptest::prelude::*;

use twm::bist::{execute, flow::run_transparent_session, Misr};
use twm::core::verify::check_transparent;
use twm::core::{Scheme1Transformer, TwmTransformer};
use twm::march::algorithms;
use twm::mem::MemoryBuilder;

fn arb_algorithm() -> impl Strategy<Value = twm::march::MarchTest> {
    let all = algorithms::all();
    let count = all.len();
    (0..count).prop_map(move |i| algorithms::all().swap_remove(i))
}

fn arb_width() -> impl Strategy<Value = usize> {
    prop_oneof![Just(2usize), Just(4), Just(8), Just(16), Just(32), Just(64)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// TWMarch preserves arbitrary memory content and reports no mismatch on
    /// a fault-free memory, for every algorithm, width and content.
    #[test]
    fn twmarch_is_transparent_for_any_content(
        march in arb_algorithm(),
        width in arb_width(),
        words in 1usize..24,
        seed in any::<u64>(),
    ) {
        let transformed = TwmTransformer::new(width).unwrap().transform(&march).unwrap();
        prop_assert!(check_transparent(transformed.transparent_test()).is_ok());

        let mut memory = MemoryBuilder::new(words, width).random_content(seed).build().unwrap();
        let before = memory.content();
        let result = execute(transformed.transparent_test(), &mut memory).unwrap();
        prop_assert!(!result.detected());
        prop_assert!(result.content_preserved());
        prop_assert_eq!(memory.content(), before);
    }

    /// The two-phase signature flow produces matching signatures on a
    /// fault-free memory for every algorithm, width and content.
    #[test]
    fn signature_prediction_matches_on_fault_free_memory(
        march in arb_algorithm(),
        width in prop_oneof![Just(4usize), Just(8), Just(16)],
        words in 1usize..16,
        seed in any::<u64>(),
    ) {
        let transformed = TwmTransformer::new(width).unwrap().transform(&march).unwrap();
        let mut memory = MemoryBuilder::new(words, width).random_content(seed).build().unwrap();
        let outcome = run_transparent_session(
            transformed.transparent_test(),
            transformed.signature_prediction(),
            &mut memory,
            Misr::standard(width),
        )
        .unwrap();
        prop_assert!(!outcome.fault_detected());
        prop_assert!(!outcome.fault_detected_exact());
        prop_assert!(outcome.content_preserved);
    }

    /// Scheme 1's transparent test is also content-preserving (it is the
    /// baseline the paper improves on, not a broken strawman).
    #[test]
    fn scheme1_is_transparent_for_any_content(
        march in arb_algorithm(),
        width in prop_oneof![Just(4usize), Just(8), Just(16)],
        words in 1usize..12,
        seed in any::<u64>(),
    ) {
        let transformed = Scheme1Transformer::new(width).unwrap().transform(&march).unwrap();
        prop_assert!(check_transparent(transformed.transparent_test()).is_ok());
        let mut memory = MemoryBuilder::new(words, width).random_content(seed).build().unwrap();
        let before = memory.content();
        let result = execute(transformed.transparent_test(), &mut memory).unwrap();
        prop_assert!(!result.detected());
        prop_assert_eq!(memory.content(), before);
    }

    /// The proposed scheme is never longer than Scheme 1 and the advantage
    /// grows with the word width.
    #[test]
    fn proposed_is_always_shorter_than_scheme1(
        march in arb_algorithm(),
        width in arb_width(),
    ) {
        let proposed = TwmTransformer::new(width).unwrap().transform(&march).unwrap();
        let scheme1 = Scheme1Transformer::new(width).unwrap().transform(&march).unwrap();
        prop_assert!(
            proposed.transparent_test().operations_per_word()
                < scheme1.transparent_test().operations_per_word()
        );
    }
}
