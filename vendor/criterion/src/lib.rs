//! Offline shim for `criterion`: a compact wall-clock benchmark harness
//! implementing the subset of the real crate's API this workspace uses —
//! `Criterion::benchmark_group`, `bench_function`/`bench_with_input`,
//! `Bencher::iter`/`iter_batched`, `Throughput`, `BenchmarkId` and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Each benchmark is calibrated to a per-sample target time, run for a
//! configurable number of samples and reported as the median time per
//! iteration (plus throughput when declared). Set `TWM_BENCH_FAST=1` for a
//! quick smoke run (fewer, shorter samples — useful in CI). No HTML
//! reports, statistics beyond min/median/max, or regression tracking.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput declaration for a benchmark.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// How batched iteration amortises setup cost (accepted, not acted on).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id composed of a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

fn fast_mode() -> bool {
    std::env::var("TWM_BENCH_FAST").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// The benchmark driver. One per bench binary.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    target_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        if fast_mode() {
            Self {
                sample_size: 5,
                target_sample_time: Duration::from_millis(5),
            }
        } else {
            Self {
                sample_size: 20,
                target_sample_time: Duration::from_millis(50),
            }
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup {
            sample_size: self.sample_size,
            target_sample_time: self.target_sample_time,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (sample_size, target) = (self.sample_size, self.target_sample_time);
        run_benchmark(&id.into().id, sample_size, target, None, f);
        self
    }
}

/// A group of related benchmarks sharing sample settings and throughput.
pub struct BenchmarkGroup<'a> {
    sample_size: usize,
    target_sample_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, size: usize) -> &mut Self {
        if !fast_mode() {
            self.sample_size = size.max(2);
        }
        self
    }

    /// Declares the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks a function.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(
            &id.into().id,
            self.sample_size,
            self.target_sample_time,
            self.throughput,
            f,
        );
        self
    }

    /// Benchmarks a function against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(
            &id.id,
            self.sample_size,
            self.target_sample_time,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to the benchmark closure to drive measured iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measures `routine` over the calibrated number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Measures `routine` with a fresh `setup` value per iteration; only the
    /// routine is timed.
    pub fn iter_batched<S, O, Setup, R>(
        &mut self,
        mut setup: Setup,
        mut routine: R,
        _size: BatchSize,
    ) where
        Setup: FnMut() -> S,
        R: FnMut(S) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            hint::black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

fn run_benchmark<F>(
    id: &str,
    sample_size: usize,
    target_sample_time: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    // Calibration: find an iteration count that fills the target sample time.
    let mut iters = 1u64;
    loop {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        if bencher.elapsed >= target_sample_time || iters >= 1 << 24 {
            break;
        }
        let factor = if bencher.elapsed.is_zero() {
            16.0
        } else {
            (target_sample_time.as_secs_f64() / bencher.elapsed.as_secs_f64()).clamp(1.5, 16.0)
        };
        iters = ((iters as f64 * factor).ceil() as u64).max(iters + 1);
    }

    let mut per_iter: Vec<f64> = (0..sample_size)
        .map(|_| {
            let mut bencher = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            bencher.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.partial_cmp(b).expect("benchmark times are finite"));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];

    let mut line = format!(
        "{id:<44} time: [{} {} {}]",
        format_time(min),
        format_time(median),
        format_time(max)
    );
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let rate = count as f64 / median;
        line.push_str(&format!("  thrpt: {} {unit}", format_rate(rate)));
    }
    println!("{line}");
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.2} s")
    }
}

fn format_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2}K", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

/// Groups benchmark functions into one callable entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Expands to `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        std::env::set_var("TWM_BENCH_FAST", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-smoke");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 8],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        group.finish();
    }
}
