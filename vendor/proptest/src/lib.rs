//! Offline shim for `proptest`: a minimal deterministic property-testing
//! engine implementing exactly the subset of the real crate's API this
//! workspace uses — the `proptest!` macro (with optional
//! `#![proptest_config(...)]` header), `Strategy` with `prop_map`/`boxed`,
//! `Just`, integer-range and tuple strategies, `any::<T>()`,
//! `prop::collection::vec`, `prop_oneof!`, `prop_assert!`/`prop_assert_eq!`
//! and `prop_assume!`.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed (derived from the test name), there is no
//! shrinking of failing inputs, and rejected assumptions skip the case
//! instead of retrying. See `vendor/README.md`.

/// Why a test case ended without a verdict.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assume!` rejected the generated input; the case is skipped.
    Reject,
}

/// Deterministic per-test pseudo-random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a raw seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit pseudo-random value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 128-bit pseudo-random value.
    pub fn next_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Pseudo-random value in `0..bound` (`bound` must be non-zero).
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range strategy");
        self.next_u64() % bound
    }
}

/// Drives the cases of one property test.
#[derive(Debug)]
pub struct TestRunner {
    cases: u32,
    base_seed: u64,
}

impl TestRunner {
    /// Creates a runner for the named test under the given configuration.
    #[must_use]
    pub fn new(config: prelude::ProptestConfig, name: &str) -> Self {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            cases: config.cases,
            base_seed: seed,
        }
    }

    /// Number of cases to run.
    #[must_use]
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The generator for one case.
    #[must_use]
    pub fn rng_for(&self, case: u32) -> TestRng {
        TestRng::new(self.base_seed ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through a function.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy applying a function to another strategy's output.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies (the `prop_oneof!` backend).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union over the given options (must be non-empty).
        #[must_use]
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let index = rng.below(self.options.len() as u64) as usize;
            self.options[index].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;

                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $ty
                }
            }
        )*};
    }

    int_range_strategy!(usize, u64, u32, u16, u8);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);

    /// Strategy for the full value range of a type (`any::<T>()`).
    #[derive(Debug, Clone, Default)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64()
        }
    }

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u128()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() as u8
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The strategy for any value of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy for vectors with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of values from `element`, with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-importable API surface, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Configuration of a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default is 256; 64 keeps the single-core CI budget
            // reasonable while still exercising a useful input spread.
            Self { cases: 64 }
        }
    }
}

/// Defines property tests: each function runs once per generated case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::prelude::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (($config:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::prelude::ProptestConfig = $config;
                let runner = $crate::TestRunner::new(config, concat!(module_path!(), "::", stringify!($name)));
                for case in 0..runner.cases() {
                    let mut rng = runner.rng_for(case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_lengths_respect_range(v in collection::vec(any::<bool>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![Just(1usize), Just(2)].prop_map(|v| v * 10)) {
            prop_assert!(x == 10 || x == 20);
        }

        #[test]
        fn assume_skips_cases(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let runner = crate::TestRunner::new(ProptestConfig::with_cases(4), "seed-test");
        let a: Vec<u64> = (0..4).map(|c| runner.rng_for(c).next_u64()).collect();
        let runner2 = crate::TestRunner::new(ProptestConfig::with_cases(4), "seed-test");
        let b: Vec<u64> = (0..4).map(|c| runner2.rng_for(c).next_u64()).collect();
        assert_eq!(a, b);
    }
}
