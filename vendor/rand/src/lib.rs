//! Offline shim for `rand`: the subset used by this workspace —
//! `rngs::StdRng`, `SeedableRng::seed_from_u64` and
//! `seq::SliceRandom::shuffle` — backed by a SplitMix64 generator.
//!
//! The shim is **not** statistically equivalent to the real `StdRng`
//! (ChaCha12): sampled fault universes differ from the ones the real crate
//! would pick for the same seed. That is acceptable here because the
//! workspace only uses `rand` for deterministic *down-sampling* of fault
//! universes, never for golden expectations. See `vendor/README.md`.

/// Core generator interface: a source of 64-bit pseudo-random values.
pub trait RngCore {
    /// Next 64-bit pseudo-random value.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng`, backed by SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

pub mod seq {
    //! Sequence-related random operations.

    use super::RngCore;

    /// Stand-in for `rand::seq::SliceRandom`: in-place Fisher–Yates shuffle.
    pub trait SliceRandom {
        /// Shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                // Modulo bias is irrelevant for down-sampling purposes.
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}
