//! Offline shim for `serde`: a real (if minimal) serialization framework.
//!
//! The derives are source-compatible with the real crate for the shapes the
//! workspace uses (see `vendor/serde_derive`), but instead of the real
//! crate's visitor architecture they serialize into — and deserialize from
//! — the self-describing [`Value`] tree below. Byte-level encodings of a
//! [`Value`] live with their consumers (the `twm-fleet` wire codec); this
//! crate owns only the data model.
//!
//! The `'de` lifetime on [`Deserialize`] is kept for annotation
//! compatibility with the real crate; the shim always deserializes from a
//! borrowed [`Value`] tree, so the lifetime carries no borrow. When
//! building with network access, swap this shim for the real `serde` plus a
//! format crate and reimplement `twm-fleet::wire` over it (see
//! `vendor/README.md`).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The self-describing serialization tree every [`Serialize`] impl produces
/// and every [`Deserialize`] impl consumes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unit: `()`, unit structs, unit enum variants' payload.
    Unit,
    /// A boolean.
    Bool(bool),
    /// Any unsigned integer (widened to 128 bits).
    UInt(u128),
    /// Any signed integer (widened to 128 bits).
    Int(i128),
    /// Any floating-point number (widened to `f64`; exact for `f32`).
    Float(f64),
    /// A string.
    Str(String),
    /// A sequence: `Vec`, sets, tuples, tuple structs.
    Seq(Vec<Value>),
    /// A key-value map, in iteration order.
    Map(Vec<(Value, Value)>),
    /// Named fields of a struct or struct-like enum variant.
    Record(Vec<(String, Value)>),
    /// An enum variant by name, wrapping its payload shape.
    Variant(String, Box<Value>),
}

impl Value {
    /// A short human-readable name of the value's shape, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Unit => "unit",
            Value::Bool(_) => "bool",
            Value::UInt(_) => "unsigned integer",
            Value::Int(_) => "signed integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
            Value::Record(_) => "record",
            Value::Variant(_, _) => "variant",
        }
    }
}

/// A deserialization error: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error with an explicit message.
    #[must_use]
    pub fn message<S: Into<String>>(message: S) -> Self {
        Self(message.into())
    }

    /// "expected `what`, found `<value kind>`".
    #[must_use]
    pub fn unexpected(what: &str, value: &Value) -> Self {
        Self(format!("expected {what}, found {}", value.kind()))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serialization into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into the shim's [`Value`] data model.
    fn serialize(&self) -> Value;
}

/// Deserialization from a borrowed [`Value`] tree. The `'de` lifetime is
/// API-compatibility decoration; see the [crate docs](self).
pub trait Deserialize<'de>: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when `value`'s shape does not match `Self`.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

/// Serializes any value into the [`Value`] data model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.serialize()
}

/// Deserializes any value from the [`Value`] data model.
///
/// # Errors
///
/// Returns [`Error`] when the tree's shape does not match `T`.
pub fn from_value<'de, T: Deserialize<'de>>(value: &Value) -> Result<T, Error> {
    T::deserialize(value)
}

/// Looks up `name` in a record's fields and deserializes it — the helper
/// behind every derived struct field. Missing fields are an error (the shim
/// has no `#[serde(default)]`).
///
/// # Errors
///
/// Returns [`Error`] when the field is missing or has the wrong shape.
pub fn from_record<'de, T: Deserialize<'de>>(
    fields: &[(String, Value)],
    name: &str,
) -> Result<T, Error> {
    fields
        .iter()
        .find(|(key, _)| key == name)
        .map(|(_, value)| T::deserialize(value))
        .transpose()?
        .ok_or_else(|| Error::message(format!("missing field `{name}`")))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_uint {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                Value::UInt(u128::from(*self))
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::UInt(raw) => <$ty>::try_from(*raw).map_err(|_| {
                        Error::message(format!(
                            "{raw} out of range for {}", stringify!($ty)
                        ))
                    }),
                    Value::Int(raw) => <$ty>::try_from(*raw).map_err(|_| {
                        Error::message(format!(
                            "{raw} out of range for {}", stringify!($ty)
                        ))
                    }),
                    _ => Err(Error::unexpected(stringify!($ty), value)),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, u128);

macro_rules! impl_int {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize(&self) -> Value {
                Value::Int(i128::from(*self))
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(raw) => <$ty>::try_from(*raw).map_err(|_| {
                        Error::message(format!(
                            "{raw} out of range for {}", stringify!($ty)
                        ))
                    }),
                    Value::UInt(raw) => i128::try_from(*raw)
                        .ok()
                        .and_then(|raw| <$ty>::try_from(raw).ok())
                        .ok_or_else(|| Error::message(format!(
                            "{raw} out of range for {}", stringify!($ty)
                        ))),
                    _ => Err(Error::unexpected(stringify!($ty), value)),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, i128);

impl Serialize for usize {
    fn serialize(&self) -> Value {
        Value::UInt(*self as u128)
    }
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        u128::deserialize(value)?
            .try_into()
            .map_err(|_| Error::message("out of range for usize"))
    }
}

impl Serialize for isize {
    fn serialize(&self) -> Value {
        Value::Int(*self as i128)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        i128::deserialize(value)?
            .try_into()
            .map_err(|_| Error::message("out of range for isize"))
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::unexpected("bool", value)),
        }
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(raw) => Ok(*raw),
            _ => Err(Error::unexpected("f64", value)),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|raw| raw as f32)
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::unexpected("char", value)),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::unexpected("string", value)),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Unit
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Unit => Ok(()),
            _ => Err(Error::unexpected("unit", value)),
        }
    }
}

// ---------------------------------------------------------------------------
// Reference / container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(Error::unexpected("sequence", value)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            None => Value::Variant("None".to_string(), Box::new(Value::Unit)),
            Some(inner) => Value::Variant("Some".to_string(), Box::new(inner.serialize())),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Variant(name, payload) => match (name.as_str(), &**payload) {
                ("None", Value::Unit) => Ok(None),
                ("Some", inner) => T::deserialize(inner).map(Some),
                _ => Err(Error::unexpected("Option", value)),
            },
            _ => Err(Error::unexpected("Option", value)),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(key, value)| (key.serialize(), value.serialize()))
                .collect(),
        )
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(key, value)| Ok((K::deserialize(key)?, V::deserialize(value)?)))
                .collect(),
            _ => Err(Error::unexpected("map", value)),
        }
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            _ => Err(Error::unexpected("set", value)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident $index:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$index.serialize()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                const ARITY: usize = [$($index,)+].len();
                match value {
                    Value::Seq(items) if items.len() == ARITY => {
                        Ok(($($name::deserialize(&items[$index])?,)+))
                    }
                    _ => Err(Error::unexpected("tuple", value)),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(from_value::<u64>(&to_value(&17u64)), Ok(17));
        assert_eq!(from_value::<i32>(&to_value(&-4i32)), Ok(-4));
        assert_eq!(from_value::<usize>(&to_value(&9usize)), Ok(9));
        assert_eq!(from_value::<bool>(&to_value(&true)), Ok(true));
        assert_eq!(from_value::<f64>(&to_value(&1.5f64)), Ok(1.5));
        assert_eq!(
            from_value::<String>(&to_value("hi")),
            Ok(String::from("hi"))
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(from_value::<Vec<u32>>(&to_value(&v)), Ok(v));
        let some = Some(5u8);
        assert_eq!(from_value::<Option<u8>>(&to_value(&some)), Ok(some));
        assert_eq!(from_value::<Option<u8>>(&to_value(&None::<u8>)), Ok(None));
        let map: BTreeMap<String, u64> = [("a".to_string(), 1u64)].into_iter().collect();
        assert_eq!(
            from_value::<BTreeMap<String, u64>>(&to_value(&map)),
            Ok(map)
        );
        let set: BTreeSet<(bool, bool)> = [(true, false)].into_iter().collect();
        assert_eq!(
            from_value::<BTreeSet<(bool, bool)>>(&to_value(&set)),
            Ok(set)
        );
    }

    #[test]
    fn shape_mismatch_errors() {
        assert!(from_value::<u64>(&Value::Bool(true)).is_err());
        assert!(from_value::<Vec<u8>>(&Value::Unit).is_err());
        assert!(from_value::<u8>(&Value::UInt(300)).is_err());
    }
}
