//! Offline shim for `serde`: marker traits plus no-op derive macros, enough
//! for `#[derive(Serialize, Deserialize)]` annotations to compile unchanged.
//! Nothing in this workspace performs actual serialization today; when it
//! does, swap this shim for the real crates.io `serde` (see
//! `vendor/README.md`).

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (no methods; the no-op derive
/// never implements it, it only keeps the annotation compiling).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (no methods).
pub trait Deserialize<'de> {}
