//! Offline shim for `serde_derive`: real (if minimal) derive macros.
//!
//! The derives accept the same surface grammar as the real crate for the
//! shapes this workspace uses — plain (non-generic) structs with named
//! fields, tuple structs, unit structs, and enums whose variants are unit,
//! tuple or struct-like — and expand to implementations of the shim
//! `serde::Serialize` / `serde::Deserialize` traits over the shim's
//! self-describing `Value` data model (see `vendor/serde/src/lib.rs`).
//!
//! The only `#[serde(...)]` helper attribute implemented is
//! `#[serde(skip)]` on a named struct field: the field is omitted from the
//! serialized record and reconstructed with `Default::default()`. Other
//! helper attributes are rejected at compile time rather than silently
//! ignored, so behaviour never diverges from the real crate unnoticed.
//!
//! There is deliberately no `syn`/`quote` dependency (the build environment
//! is offline): parsing walks the raw token stream, code generation builds
//! a source string and re-parses it. See `vendor/README.md`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field: identifier plus whether it is `#[serde(skip)]`ped.
struct Field {
    name: String,
    skip: bool,
}

/// The shape of one enum variant.
enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

/// The parsed input item.
enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Real (minimal) stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Real (minimal) stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item)
            .parse()
            .expect("serde_derive shim generated invalid Rust"),
        Err(message) => format!("::core::compile_error!({message:?});")
            .parse()
            .expect("compile_error! literal"),
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;

    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // `#` + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // `pub(crate)` / `pub(in ...)`
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" {
                    break;
                }
                return Err(format!("serde shim derive: unexpected token `{kw}`"));
            }
            _ => return Err("serde shim derive: expected `struct` or `enum`".into()),
        }
    }
    let is_enum = matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "enum");
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim derive: expected a type name".into()),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive: generic type `{name}` is not supported"
            ));
        }
    }

    if is_enum {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let variants = parse_variants(g.stream())?;
                Ok(Item::Enum { name, variants })
            }
            _ => Err("serde shim derive: expected the enum body".into()),
        }
    } else {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                Ok(Item::NamedStruct { name, fields })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = split_top_level(g.stream())?.len();
                Ok(Item::TupleStruct { name, arity })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
            None => Ok(Item::UnitStruct { name }),
            _ => Err("serde shim derive: expected the struct body".into()),
        }
    }
}

/// Splits a token stream on commas at angle-bracket depth zero (groups are
/// atomic token trees, so only `<`/`>` puncts need depth tracking). Empty
/// chunks (trailing commas) are dropped.
fn split_top_level(stream: TokenStream) -> Result<Vec<Vec<TokenTree>>, String> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut depth = 0i32;
    for token in stream {
        if let TokenTree::Punct(p) = &token {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    if !current.is_empty() {
                        chunks.push(std::mem::take(&mut current));
                    }
                    continue;
                }
                _ => {}
            }
        }
        current.push(token);
    }
    if depth != 0 {
        return Err("serde shim derive: unbalanced angle brackets".into());
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    Ok(chunks)
}

/// Whether an attribute group (the `[...]` after `#`) is a `#[serde(...)]`
/// helper; returns its argument list rendered as a string when it is.
fn serde_attribute_args(group: &proc_macro::Group) -> Option<String> {
    let mut tokens = group.stream().into_iter();
    match (tokens.next(), tokens.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            Some(args.stream().to_string())
        }
        _ => None,
    }
}

/// Parses `name: Type` fields, honouring leading attributes and visibility.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    for chunk in split_top_level(stream)? {
        let mut skip = false;
        let mut i = 0usize;
        loop {
            match chunk.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = chunk.get(i + 1) {
                        if let Some(args) = serde_attribute_args(g) {
                            if args.trim() == "skip" {
                                skip = true;
                            } else {
                                return Err(format!(
                                    "serde shim derive: unsupported #[serde({args})]"
                                ));
                            }
                        }
                    }
                    i += 2;
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = chunk.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                Some(TokenTree::Ident(id)) => {
                    fields.push(Field {
                        name: id.to_string(),
                        skip,
                    });
                    break;
                }
                _ => return Err("serde shim derive: malformed field".into()),
            }
        }
    }
    Ok(fields)
}

/// Parses enum variants: `[attrs] Name [{...} | (...)] [= discriminant]`.
fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for chunk in split_top_level(stream)? {
        let mut i = 0usize;
        while let Some(TokenTree::Punct(p)) = chunk.get(i) {
            if p.as_char() == '#' {
                if let Some(TokenTree::Group(g)) = chunk.get(i + 1) {
                    if let Some(args) = serde_attribute_args(g) {
                        return Err(format!("serde shim derive: unsupported #[serde({args})]"));
                    }
                }
                i += 2;
            } else {
                break;
            }
        }
        let name = match chunk.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => return Err("serde shim derive: malformed enum variant".into()),
        };
        i += 1;
        let shape = match chunk.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                VariantShape::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                VariantShape::Tuple(split_top_level(g.stream())?.len())
            }
            // Unit variant, possibly with an explicit `= discriminant`.
            _ => VariantShape::Unit,
        };
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut entries = String::new();
            for field in fields.iter().filter(|f| !f.skip) {
                entries.push_str(&format!(
                    "(::std::string::String::from({n:?}), ::serde::Serialize::serialize(&self.{n})),",
                    n = field.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\
                     fn serialize(&self) -> ::serde::Value {{\
                         ::serde::Value::Record(::std::vec![{entries}])\
                     }}\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            let mut entries = String::new();
            for index in 0..*arity {
                entries.push_str(&format!("::serde::Serialize::serialize(&self.{index}),"));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\
                     fn serialize(&self) -> ::serde::Value {{\
                         ::serde::Value::Seq(::std::vec![{entries}])\
                     }}\
                 }}"
            )
        }
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\
                 fn serialize(&self) -> ::serde::Value {{ ::serde::Value::Unit }}\
             }}"
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for variant in variants {
                let v = &variant.name;
                match &variant.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Variant(\
                             ::std::string::String::from({v:?}),\
                             ::std::boxed::Box::new(::serde::Value::Unit)),"
                    )),
                    VariantShape::Tuple(arity) => {
                        let binders: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({binders}) => ::serde::Value::Variant(\
                                 ::std::string::String::from({v:?}),\
                                 ::std::boxed::Box::new(::serde::Value::Seq(\
                                     ::std::vec![{items}]))),",
                            binders = binders.join(","),
                            items = items.join(","),
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let binders: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({n:?}), \
                                      ::serde::Serialize::serialize({n})),",
                                    n = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binders} }} => ::serde::Value::Variant(\
                                 ::std::string::String::from({v:?}),\
                                 ::std::boxed::Box::new(::serde::Value::Record(\
                                     ::std::vec![{entries}]))),",
                            binders = binders.join(","),
                            entries = entries.concat(),
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\
                     fn serialize(&self) -> ::serde::Value {{\
                         match self {{ {arms} }}\
                     }}\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for field in fields {
                if field.skip {
                    inits.push_str(&format!(
                        "{}: ::std::default::Default::default(),",
                        field.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{n}: ::serde::from_record(fields, {n:?})?,",
                        n = field.name
                    ));
                }
            }
            (
                name,
                format!(
                    "match value {{\
                         ::serde::Value::Record(fields) => \
                             ::std::result::Result::Ok({name} {{ {inits} }}),\
                         _ => ::std::result::Result::Err(\
                             ::serde::Error::unexpected({name:?}, value)),\
                     }}"
                ),
            )
        }
        Item::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::from_value(&items[{i}])?,"))
                .collect();
            (
                name,
                format!(
                    "match value {{\
                         ::serde::Value::Seq(items) if items.len() == {arity} => \
                             ::std::result::Result::Ok({name}({items})),\
                         _ => ::std::result::Result::Err(\
                             ::serde::Error::unexpected({name:?}, value)),\
                     }}",
                    items = items.concat(),
                ),
            )
        }
        Item::UnitStruct { name } => (
            name,
            format!(
                "match value {{\
                     ::serde::Value::Unit => ::std::result::Result::Ok({name}),\
                     _ => ::std::result::Result::Err(\
                         ::serde::Error::unexpected({name:?}, value)),\
                 }}"
            ),
        ),
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for variant in variants {
                let v = &variant.name;
                match &variant.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "({v:?}, ::serde::Value::Unit) => \
                             ::std::result::Result::Ok({name}::{v}),"
                    )),
                    VariantShape::Tuple(arity) => {
                        let items: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::from_value(&items[{i}])?,"))
                            .collect();
                        arms.push_str(&format!(
                            "({v:?}, ::serde::Value::Seq(items)) if items.len() == {arity} => \
                                 ::std::result::Result::Ok({name}::{v}({items})),",
                            items = items.concat(),
                        ));
                    }
                    VariantShape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("{n}: ::serde::from_record(fields, {n:?})?,", n = f.name)
                            })
                            .collect();
                        arms.push_str(&format!(
                            "({v:?}, ::serde::Value::Record(fields)) => \
                                 ::std::result::Result::Ok({name}::{v} {{ {inits} }}),",
                            inits = inits.concat(),
                        ));
                    }
                }
            }
            (
                name,
                format!(
                    "match value {{\
                         ::serde::Value::Variant(variant, payload) => \
                             match (variant.as_str(), &**payload) {{\
                                 {arms}\
                                 _ => ::std::result::Result::Err(\
                                     ::serde::Error::unexpected({name:?}, value)),\
                             }},\
                         _ => ::std::result::Result::Err(\
                             ::serde::Error::unexpected({name:?}, value)),\
                     }}"
                ),
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\
             fn deserialize(value: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::Error> {{\
                 {body}\
             }}\
         }}"
    )
}
